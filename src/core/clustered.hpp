// Clustered PTB (Section III.E.2): "one approach to make PTB more scalable
// (>32 cores) consists of clustering the PTB load-balancer into groups of 8
// or 16 cores and replicating the structure as needed" — the paper argues a
// group of 8-16 cores already carries enough slack to balance well.
//
// Each cluster runs its own PtbLoadBalancer over its members at the small-
// cluster wire latency; clusters do not exchange tokens.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "core/balancer.hpp"

namespace ptb {

class ClusteredBalancer {
 public:
  /// Partitions `num_cores` into contiguous clusters of at most
  /// `cluster_size` cores (the paper suggests 8 or 16).
  ClusteredBalancer(const PtbConfig& cfg, std::uint32_t num_cores,
                    std::uint32_t cluster_size, double local_budget);

  /// Same contract as PtbLoadBalancer::cycle, applied per cluster. The
  /// `global_over` gate uses each *cluster's* aggregate (a cluster only has
  /// its own wires), which is what makes the scheme scalable. Both arrays
  /// must have num_cores() entries (allocation-free hot path).
  void cycle(Cycle now, const double* est_power, double cluster_budget_total,
             PtbPolicy policy, double* eff_budget);

  /// Vector convenience overload (tests and benches).
  void cycle(Cycle now, const std::vector<double>& est_power,
             double cluster_budget_total, PtbPolicy policy,
             std::vector<double>& eff_budget) {
    PTB_ASSERT(est_power.size() == num_cores_, "power vector arity mismatch");
    eff_budget.resize(num_cores_);
    cycle(now, est_power.data(), cluster_budget_total, policy,
          eff_budget.data());
  }

  /// Forwards a new per-core budget to every cluster balancer (mid-run
  /// global-budget changes; see PtbLoadBalancer::set_local_budget).
  void set_local_budget(double local_budget);

  std::uint32_t num_clusters() const {
    return static_cast<std::uint32_t>(clusters_.size());
  }
  std::uint32_t cluster_size() const { return cluster_size_; }
  /// Cluster k's balancer and the index of its first core (auditing).
  const PtbLoadBalancer& cluster(std::uint32_t k) const {
    return *clusters_[k];
  }
  std::uint32_t cluster_begin(std::uint32_t k) const {
    return k * cluster_size_;
  }
  std::uint32_t wire_latency() const {
    return clusters_.empty() ? 0 : clusters_[0]->wire_latency();
  }

  double tokens_donated() const;
  double tokens_granted() const;

  /// Registers CMP-wide token totals under `prefix` plus every cluster
  /// balancer's stats under `prefix`.cluster.K (src/stats).
  void register_stats(StatsRegistry& reg, const std::string& prefix)
      const PTB_REQUIRES(g_sequential_point);

  /// Attach/detach the event tracer on every cluster balancer; cluster k
  /// emits token events with its global core ids and pool tag k.
  void set_tracer(EventTracer* t);

  // Checkpoint support: every cluster balancer, in cluster order.
  void save_state(ByteWriter& w) const {
    w.u64(clusters_.size());
    for (const auto& c : clusters_) c->save_state(w);
  }
  void load_state(ByteReader& r) {
    if (r.u64() != clusters_.size()) {
      r.fail();
      return;
    }
    for (auto& c : clusters_) c->load_state(r);
  }

 private:
  std::uint32_t num_cores_;
  std::uint32_t cluster_size_;
  std::vector<std::unique_ptr<PtbLoadBalancer>> clusters_;
};

}  // namespace ptb

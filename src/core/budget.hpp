// Global and local power budgets (Section III.C of the paper).
//
// The global budget is a fraction of the CMP's peak power (the paper
// evaluates 50%); without PTB each core simply receives an equal local
// share (the "naive" split the paper shows failing for parallel workloads).
#pragma once

#include <string>

#include "common/config.hpp"
#include "common/thread_annotations.hpp"
#include "power/power_model.hpp"

namespace ptb {

class StatsRegistry;

class BudgetManager {
 public:
  explicit BudgetManager(const SimConfig& cfg)
      : peak_core_(analytic_peak_core_power(cfg.power, cfg.core)),
        num_cores_(cfg.num_cores),
        global_(peak_core_ * cfg.num_cores * cfg.budget_fraction) {}

  /// Per-core analytic peak power (tokens/cycle).
  double peak_core_power() const { return peak_core_; }
  /// CMP-wide peak.
  double peak_power() const { return peak_core_ * num_cores_; }
  /// Global power budget (tokens/cycle).
  double global_budget() const { return global_; }
  /// Naive equal per-core share.
  double local_budget() const { return global_ / num_cores_; }

  /// Registers the budget/peak gauges under `prefix` (src/stats).
  void register_stats(StatsRegistry& reg, const std::string& prefix)
      const PTB_REQUIRES(g_sequential_point);

 private:
  double peak_core_;
  std::uint32_t num_cores_;
  double global_;
};

}  // namespace ptb

// Prior-art energy mechanisms the paper positions PTB against:
//
//  * Thrifty Barrier (Li, Martínez & Huang, HPCA 2004 — reference [13]):
//    a core arriving at a barrier predicts its wait from history and goes
//    to sleep when the predicted wait amortizes the wake-up cost; the
//    barrier release wakes all sleepers (paying the wake penalty).
//
//  * Meeting Points (Cai et al., PACT 2008 — reference [11]): thread
//    delaying — per barrier episode, measure each thread's slack (how long
//    it waited) and DVFS-slow the non-critical threads for the next phase
//    so everyone arrives together.
//
// Both reduce energy around synchronization; neither enforces a power
// budget — which is the paper's argument for PTB (Sections II.C and III).
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "sync/spin_tracker.hpp"

namespace ptb {

class ThriftyBarrierController {
 public:
  /// `wake_penalty`: cycles from the release signal until a slept core can
  /// execute again (HPCA'04 models DVFS/sleep-state exit).
  ThriftyBarrierController(std::uint32_t num_cores, Cycle wake_penalty = 200);

  /// Per-cycle, per-core. `state` is the core's execution state, `episode`
  /// the global barrier-episode counter (increments on each release), and
  /// `quiescent` whether the core's ROB is empty — a core may only sleep
  /// once its barrier-arrival operation has fully drained, otherwise the
  /// last arriver could sleep before releasing the barrier (deadlock).
  /// Returns true while the core must sleep (not tick).
  bool tick(CoreId i, Cycle now, ExecState state, std::uint64_t episode,
            bool quiescent);

  Cycle wake_penalty() const { return wake_penalty_; }

  // Statistics.
  std::uint64_t sleeps = 0;
  std::uint64_t sleep_cycles = 0;

 private:
  struct PerCore {
    bool in_barrier = false;
    bool asleep = false;
    Cycle entered_at = 0;
    Cycle wake_at = kNeverCycle;
    double predicted_wait = 0.0;  // EMA of past barrier waits
    std::uint64_t entry_episode = 0;
  };

  Cycle wake_penalty_;
  std::vector<PerCore> cores_;
};

class MeetingPointsController {
 public:
  explicit MeetingPointsController(std::uint32_t num_cores);

  /// Per-cycle, per-core: observe barrier entry/exit and maintain slack.
  void tick(CoreId i, Cycle now, ExecState state);

  /// DVFS mode this core should run at for the current phase (index into
  /// kDvfsModes; 0 = full speed).
  std::uint32_t mode_for(CoreId i) const { return mode_[i]; }

  // Statistics.
  std::uint64_t episodes = 0;

 private:
  void close_episode(Cycle now);

  struct PerCore {
    bool waiting = false;
    Cycle arrived_at = 0;
    double wait_sample = 0.0;  // this episode's measured wait
  };

  std::vector<PerCore> cores_;
  std::vector<std::uint32_t> mode_;
  std::vector<double> slack_ema_;  // fraction of the phase spent waiting
  std::uint32_t waiting_count_ = 0;
  bool saw_waiter_ = false;
  Cycle phase_start_ = 0;
};

}  // namespace ptb

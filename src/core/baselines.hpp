// Prior-art energy mechanisms the paper positions PTB against:
//
//  * Thrifty Barrier (Li, Martínez & Huang, HPCA 2004 — reference [13]):
//    a core arriving at a barrier predicts its wait from history and goes
//    to sleep when the predicted wait amortizes the wake-up cost; the
//    barrier release wakes all sleepers (paying the wake penalty).
//
//  * Meeting Points (Cai et al., PACT 2008 — reference [11]): thread
//    delaying — per barrier episode, measure each thread's slack (how long
//    it waited) and DVFS-slow the non-critical threads for the next phase
//    so everyone arrives together.
//
// Both reduce energy around synchronization; neither enforces a power
// budget — which is the paper's argument for PTB (Sections II.C and III).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "sync/spin_tracker.hpp"

namespace ptb {

class ThriftyBarrierController {
 public:
  /// `wake_penalty`: cycles from the release signal until a slept core can
  /// execute again (HPCA'04 models DVFS/sleep-state exit).
  ThriftyBarrierController(std::uint32_t num_cores, Cycle wake_penalty = 200);

  /// Per-cycle, per-core. `state` is the core's execution state, `episode`
  /// the global barrier-episode counter (increments on each release), and
  /// `quiescent` whether the core's ROB is empty — a core may only sleep
  /// once its barrier-arrival operation has fully drained, otherwise the
  /// last arriver could sleep before releasing the barrier (deadlock).
  /// Returns true while the core must sleep (not tick).
  bool tick(CoreId i, Cycle now, ExecState state, std::uint64_t episode,
            bool quiescent);

  Cycle wake_penalty() const { return wake_penalty_; }

  // Statistics.
  std::uint64_t sleeps = 0;
  std::uint64_t sleep_cycles = 0;

  // Checkpoint support.
  void save_state(ByteWriter& w) const {
    w.u64(cores_.size());
    for (const PerCore& c : cores_) {
      w.boolean(c.in_barrier);
      w.boolean(c.asleep);
      w.u64(c.entered_at);
      w.u64(c.wake_at);
      w.f64(c.predicted_wait);
      w.u64(c.entry_episode);
    }
    w.u64(sleeps);
    w.u64(sleep_cycles);
  }
  void load_state(ByteReader& r) {
    if (r.u64() != cores_.size()) {
      r.fail();
      return;
    }
    for (PerCore& c : cores_) {
      c.in_barrier = r.boolean();
      c.asleep = r.boolean();
      c.entered_at = r.u64();
      c.wake_at = r.u64();
      c.predicted_wait = r.f64();
      c.entry_episode = r.u64();
    }
    sleeps = r.u64();
    sleep_cycles = r.u64();
  }

 private:
  struct PerCore {
    bool in_barrier = false;
    bool asleep = false;
    Cycle entered_at = 0;
    Cycle wake_at = kNeverCycle;
    double predicted_wait = 0.0;  // EMA of past barrier waits
    std::uint64_t entry_episode = 0;
  };

  Cycle wake_penalty_;
  std::vector<PerCore> cores_;
};

class MeetingPointsController {
 public:
  explicit MeetingPointsController(std::uint32_t num_cores);

  /// Per-cycle, per-core: observe barrier entry/exit and maintain slack.
  void tick(CoreId i, Cycle now, ExecState state);

  /// DVFS mode this core should run at for the current phase (index into
  /// kDvfsModes; 0 = full speed).
  std::uint32_t mode_for(CoreId i) const { return mode_[i]; }

  // Statistics.
  std::uint64_t episodes = 0;

  // Checkpoint support.
  void save_state(ByteWriter& w) const {
    w.u64(cores_.size());
    for (const PerCore& c : cores_) {
      w.boolean(c.waiting);
      w.u64(c.arrived_at);
      w.f64(c.wait_sample);
    }
    w.u64(mode_.size());
    for (const std::uint32_t m : mode_) w.u32(m);
    w.f64_vec(slack_ema_);
    w.u32(waiting_count_);
    w.boolean(saw_waiter_);
    w.u64(phase_start_);
    w.u64(episodes);
  }
  void load_state(ByteReader& r) {
    if (r.u64() != cores_.size()) {
      r.fail();
      return;
    }
    for (PerCore& c : cores_) {
      c.waiting = r.boolean();
      c.arrived_at = r.u64();
      c.wait_sample = r.f64();
    }
    if (r.u64() != mode_.size()) {
      r.fail();
      return;
    }
    for (std::uint32_t& m : mode_) m = r.u32();
    std::vector<double> se;
    r.f64_vec(se);
    if (se.size() != slack_ema_.size()) {
      r.fail();
      return;
    }
    slack_ema_ = std::move(se);
    waiting_count_ = r.u32();
    saw_waiter_ = r.boolean();
    phase_start_ = r.u64();
    episodes = r.u64();
  }

 private:
  void close_episode(Cycle now);

  struct PerCore {
    bool waiting = false;
    Cycle arrived_at = 0;
    double wait_sample = 0.0;  // this episode's measured wait
  };

  std::vector<PerCore> cores_;
  std::vector<std::uint32_t> mode_;
  std::vector<double> slack_ema_;  // fraction of the phase spent waiting
  std::uint32_t waiting_count_ = 0;
  bool saw_waiter_ = false;
  Cycle phase_start_ = 0;
};

}  // namespace ptb

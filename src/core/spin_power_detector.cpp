// SpinPowerDetector is header-only; this TU anchors the library target.
#include "core/spin_power_detector.hpp"

// Micro-op model: the unit of work flowing through the simulated cores.
//
// Programs (src/workloads) emit MicroOps; the core model (src/cpu) times
// them; the power model (src/power) charges them.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace ptb {

enum class OpClass : std::uint8_t {
  kIntAlu = 0,
  kIntMult,
  kFpAlu,
  kFpMult,
  kLoad,
  kStore,
  kBranch,
  kAtomicRmw,  // test&set / fetch&inc on a sync variable
  kNop,
  kCount,
};

inline constexpr std::uint32_t kNumOpClasses =
    static_cast<std::uint32_t>(OpClass::kCount);

const char* op_class_name(OpClass c);

/// Synchronization role of a micro-op, used by the spin tracker (Figure 3
/// breakdown) and by the program state machines. The core itself treats
/// sync ops as ordinary memory ops; semantics live in sync/sync_state.
enum class SyncRole : std::uint8_t {
  kNone = 0,
  kLockTestLoad,    // spin-load of a lock word
  kLockTryAcquire,  // atomic test&set attempt
  kLockRelease,     // store unlocking
  kBarrierArrive,   // atomic fetch&inc of the barrier counter
  kBarrierSpinLoad, // spin-load of the barrier sense word
};

struct MicroOp {
  Pc pc = 0;
  OpClass cls = OpClass::kNop;

  // Register dependencies expressed as distances to older in-flight ops
  // (1 = the immediately preceding op). 0 = no dependency. Distances larger
  // than current ROB occupancy resolve immediately.
  std::uint8_t dep1 = 0;
  std::uint8_t dep2 = 0;

  // Memory operands (kLoad / kStore / kAtomicRmw).
  Addr addr = 0;

  // Branches: the architected outcome. The predictor guesses; a mismatch
  // costs a front-end flush.
  bool branch_taken = false;

  // True for ops whose *result value* the program needs before it can emit
  // the next op (spin loads, lock attempts). Fetch stalls behind them once
  // they are in flight.
  bool blocks_generation = false;

  SyncRole sync = SyncRole::kNone;

  // Sync object index (lock id / barrier id) for ops with a SyncRole.
  std::uint32_t sync_id = 0;

  bool is_memory() const {
    return cls == OpClass::kLoad || cls == OpClass::kStore ||
           cls == OpClass::kAtomicRmw;
  }
  bool is_branch() const { return cls == OpClass::kBranch; }
};

// Checkpoint support (sim/checkpoint): byte-stable field-by-field encoding
// shared by every holder of in-flight MicroOps (core ROB, program queues).
inline void save_microop(ByteWriter& w, const MicroOp& op) {
  w.u64(op.pc);
  w.u8(static_cast<std::uint8_t>(op.cls));
  w.u8(op.dep1);
  w.u8(op.dep2);
  w.u64(op.addr);
  w.boolean(op.branch_taken);
  w.boolean(op.blocks_generation);
  w.u8(static_cast<std::uint8_t>(op.sync));
  w.u32(op.sync_id);
}

/// Returns false (and fails the reader) on out-of-range enum encodings.
inline bool load_microop(ByteReader& r, MicroOp& op) {
  op.pc = r.u64();
  const std::uint8_t cls = r.u8();
  op.dep1 = r.u8();
  op.dep2 = r.u8();
  op.addr = r.u64();
  op.branch_taken = r.boolean();
  op.blocks_generation = r.boolean();
  const std::uint8_t sync = r.u8();
  op.sync_id = r.u32();
  if (cls >= static_cast<std::uint8_t>(OpClass::kCount) ||
      sync > static_cast<std::uint8_t>(SyncRole::kBarrierSpinLoad)) {
    r.fail();
    return false;
  }
  op.cls = static_cast<OpClass>(cls);
  op.sync = static_cast<SyncRole>(sync);
  return r.ok();
}

}  // namespace ptb

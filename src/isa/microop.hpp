// Micro-op model: the unit of work flowing through the simulated cores.
//
// Programs (src/workloads) emit MicroOps; the core model (src/cpu) times
// them; the power model (src/power) charges them.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace ptb {

enum class OpClass : std::uint8_t {
  kIntAlu = 0,
  kIntMult,
  kFpAlu,
  kFpMult,
  kLoad,
  kStore,
  kBranch,
  kAtomicRmw,  // test&set / fetch&inc on a sync variable
  kNop,
  kCount,
};

inline constexpr std::uint32_t kNumOpClasses =
    static_cast<std::uint32_t>(OpClass::kCount);

const char* op_class_name(OpClass c);

/// Synchronization role of a micro-op, used by the spin tracker (Figure 3
/// breakdown) and by the program state machines. The core itself treats
/// sync ops as ordinary memory ops; semantics live in sync/sync_state.
enum class SyncRole : std::uint8_t {
  kNone = 0,
  kLockTestLoad,    // spin-load of a lock word
  kLockTryAcquire,  // atomic test&set attempt
  kLockRelease,     // store unlocking
  kBarrierArrive,   // atomic fetch&inc of the barrier counter
  kBarrierSpinLoad, // spin-load of the barrier sense word
};

struct MicroOp {
  Pc pc = 0;
  OpClass cls = OpClass::kNop;

  // Register dependencies expressed as distances to older in-flight ops
  // (1 = the immediately preceding op). 0 = no dependency. Distances larger
  // than current ROB occupancy resolve immediately.
  std::uint8_t dep1 = 0;
  std::uint8_t dep2 = 0;

  // Memory operands (kLoad / kStore / kAtomicRmw).
  Addr addr = 0;

  // Branches: the architected outcome. The predictor guesses; a mismatch
  // costs a front-end flush.
  bool branch_taken = false;

  // True for ops whose *result value* the program needs before it can emit
  // the next op (spin loads, lock attempts). Fetch stalls behind them once
  // they are in flight.
  bool blocks_generation = false;

  SyncRole sync = SyncRole::kNone;

  // Sync object index (lock id / barrier id) for ops with a SyncRole.
  std::uint32_t sync_id = 0;

  bool is_memory() const {
    return cls == OpClass::kLoad || cls == OpClass::kStore ||
           cls == OpClass::kAtomicRmw;
  }
  bool is_branch() const { return cls == OpClass::kBranch; }
};

}  // namespace ptb

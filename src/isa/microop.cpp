#include "isa/microop.hpp"

namespace ptb {

const char* op_class_name(OpClass c) {
  switch (c) {
    case OpClass::kIntAlu: return "IntAlu";
    case OpClass::kIntMult: return "IntMult";
    case OpClass::kFpAlu: return "FpAlu";
    case OpClass::kFpMult: return "FpMult";
    case OpClass::kLoad: return "Load";
    case OpClass::kStore: return "Store";
    case OpClass::kBranch: return "Branch";
    case OpClass::kAtomicRmw: return "AtomicRmw";
    case OpClass::kNop: return "Nop";
    case OpClass::kCount: break;
  }
  return "?";
}

}  // namespace ptb

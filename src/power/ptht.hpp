// Power Token History Table (PTHT): an 8K-entry, PC-indexed table holding the
// power cost (in tokens) of each static instruction's last execution
// (Section III.B of the paper). Updated at commit, read at fetch to estimate
// per-cycle power without performance counters.
//
// Hot-path layout: the full table (8K x 12B) misses the L1D, and straight-
// line code (spin loops above all) re-looks-up the same handful of PCs every
// cycle. A small direct-mapped inline cache in front of the table keeps
// those repeat lookups L1-resident. The cache is kept coherent by
// construction: its index is derived from the *table* index, so any table
// write that could remap a PC lands on (and replaces) the one inline entry
// that could have cached it — no invalidation scan, no stale reads.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ptb {

class StatsRegistry;

class Ptht {
 public:
  /// `entries` must be a power of two (paper: 8192).
  explicit Ptht(std::uint32_t entries);

  /// Inline-cache size (power of two; 256 x 16B = 4KB, comfortably L1).
  static constexpr std::size_t kInlineEntries = 256;

  /// Warm-hit fast path: returns true and sets `tokens` when the entry for
  /// `pc` is warm and tag-matching (inline cache first, then the table);
  /// false on a cold or conflict miss, leaving the caller to supply its
  /// own default — computing that default is often the expensive part, so
  /// this keeps it off the hit path.
  bool lookup_hit(Pc pc, double& tokens) const {
    ++lookups;
    const std::size_t ti = index_of(pc);
    InlineEntry& c = inline_cache_[ti & (kInlineEntries - 1)];
    if (c.tag == pc && c.tokens >= 0.0f) {
      tokens = static_cast<double>(c.tokens);
      return true;
    }
    const Entry& e = table_[ti];
    if (e.tokens < 0.0f || e.tag != pc) {
      ++cold_misses;
      return false;
    }
    c.tag = pc;
    c.tokens = e.tokens;
    tokens = static_cast<double>(e.tokens);
    return true;
  }

  /// Estimated tokens for the instruction at `pc`; returns `cold_default`
  /// when the entry is cold or tagged for a different pc.
  double lookup(Pc pc, double cold_default) const {
    double tokens;
    return lookup_hit(pc, tokens) ? tokens : cold_default;
  }

  /// Records the tokens consumed by the committed instruction at `pc`.
  void update(Pc pc, double tokens) {
    ++updates;
    const std::size_t ti = index_of(pc);
    Entry& e = table_[ti];
    e.tag = pc;
    e.tokens = static_cast<float>(tokens);
    // Write-through: replace whatever inline entry aliases this table
    // index (the coherence rule in the header comment).
    InlineEntry& c = inline_cache_[ti & (kInlineEntries - 1)];
    c.tag = pc;
    c.tokens = e.tokens;
  }

  std::uint32_t entries() const {
    return static_cast<std::uint32_t>(table_.size());
  }

  /// Registers this table's counters under `prefix` (src/stats).
  void register_stats(StatsRegistry& reg, const std::string& prefix)
      const PTB_REQUIRES(g_sequential_point);

  // Statistics.
  mutable std::uint64_t lookups = 0;
  mutable std::uint64_t cold_misses = 0;
  std::uint64_t updates = 0;

  // Checkpoint support: the table and the counters. The inline cache is a
  // pure cache (hits and misses through it count identically), so it
  // restarts empty — no observable difference.
  void save_state(ByteWriter& w) const {
    w.u64(table_.size());
    for (const Entry& e : table_) {
      w.u64(e.tag);
      w.f32(e.tokens);
    }
    w.u64(lookups);
    w.u64(cold_misses);
    w.u64(updates);
  }
  void load_state(ByteReader& r) {
    const std::uint64_t n = r.u64();
    if (n != table_.size()) {
      r.fail();
      return;
    }
    for (Entry& e : table_) {
      e.tag = r.u64();
      e.tokens = r.f32();
    }
    inline_cache_.fill(InlineEntry{});
    lookups = r.u64();
    cold_misses = r.u64();
    updates = r.u64();
  }

 private:
  struct Entry {
    Pc tag = 0;
    float tokens = -1.0f;  // <0 == cold
  };
  struct InlineEntry {
    Pc tag = 0;
    float tokens = -1.0f;  // <0 == empty (pc 0 stays checkable)
  };

  std::size_t index_of(Pc pc) const {
    // Instructions are 4-byte aligned in the synthetic ISA.
    return (pc >> 2) & mask_;
  }

  std::vector<Entry> table_;
  std::size_t mask_;
  // Filled from const lookups (it is a cache, not model state).
  mutable std::array<InlineEntry, kInlineEntries> inline_cache_{};
};

}  // namespace ptb

// Power Token History Table (PTHT): an 8K-entry, PC-indexed table holding the
// power cost (in tokens) of each static instruction's last execution
// (Section III.B of the paper). Updated at commit, read at fetch to estimate
// per-cycle power without performance counters.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace ptb {

class Ptht {
 public:
  /// `entries` must be a power of two (paper: 8192).
  explicit Ptht(std::uint32_t entries);

  /// Estimated tokens for the instruction at `pc`; returns `cold_default`
  /// when the entry is cold or tagged for a different pc.
  double lookup(Pc pc, double cold_default) const;

  /// Records the tokens consumed by the committed instruction at `pc`.
  void update(Pc pc, double tokens);

  std::uint32_t entries() const {
    return static_cast<std::uint32_t>(table_.size());
  }

  // Statistics.
  mutable std::uint64_t lookups = 0;
  mutable std::uint64_t cold_misses = 0;
  std::uint64_t updates = 0;

 private:
  struct Entry {
    Pc tag = 0;
    float tokens = -1.0f;  // <0 == cold
  };

  std::size_t index_of(Pc pc) const {
    // Instructions are 4-byte aligned in the synthetic ISA.
    return (pc >> 2) & mask_;
  }

  std::vector<Entry> table_;
  std::size_t mask_;
};

}  // namespace ptb

#include "power/ptht.hpp"

#include <bit>

#include "common/assert.hpp"

namespace ptb {

Ptht::Ptht(std::uint32_t entries) : table_(entries), mask_(entries - 1) {
  PTB_ASSERT(std::has_single_bit(entries), "PTHT size must be a power of 2");
}

double Ptht::lookup(Pc pc, double cold_default) const {
  ++lookups;
  const Entry& e = table_[index_of(pc)];
  if (e.tokens < 0.0f || e.tag != pc) {
    ++cold_misses;
    return cold_default;
  }
  return static_cast<double>(e.tokens);
}

void Ptht::update(Pc pc, double tokens) {
  ++updates;
  Entry& e = table_[index_of(pc)];
  e.tag = pc;
  e.tokens = static_cast<float>(tokens);
}

}  // namespace ptb

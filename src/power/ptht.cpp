#include "power/ptht.hpp"

#include <bit>

#include "common/assert.hpp"
#include "stats/stats.hpp"

namespace ptb {

Ptht::Ptht(std::uint32_t entries) : table_(entries), mask_(entries - 1) {
  PTB_ASSERT(std::has_single_bit(entries), "PTHT size must be a power of 2");
}

void Ptht::register_stats(StatsRegistry& reg,
                          const std::string& prefix) const {
  reg.counter(prefix + ".lookups", "PTHT lookups (fetch-side estimates)",
              &lookups);
  reg.counter(prefix + ".cold_misses",
              "lookups that missed a warm entry (cold/conflict)",
              &cold_misses);
  reg.counter(prefix + ".updates", "commit-side table updates", &updates);
}

}  // namespace ptb

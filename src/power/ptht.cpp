#include "power/ptht.hpp"

#include <bit>

#include "common/assert.hpp"

namespace ptb {

Ptht::Ptht(std::uint32_t entries) : table_(entries), mask_(entries - 1) {
  PTB_ASSERT(std::has_single_bit(entries), "PTHT size must be a power of 2");
}

}  // namespace ptb

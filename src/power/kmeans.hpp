// 1-D k-means used to group instructions by base power cost.
//
// The paper profiles SPECint2000 to obtain per-instruction base power, then
// groups instructions with a k-means into 8 groups; the grouped values drive
// the Power Token History Table with <1% aggregate error (Section III.B).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace ptb {

struct KMeansResult {
  std::vector<double> centroids;           // sorted ascending, size k
  std::vector<std::uint32_t> assignment;   // per input sample
  std::uint32_t iterations = 0;
  double inertia = 0.0;                    // sum of squared distances
};

/// Lloyd's algorithm on scalars with k-means++-style seeding (deterministic
/// given `rng`). `samples` must be non-empty and k >= 1.
KMeansResult kmeans_1d(const std::vector<double>& samples, std::uint32_t k,
                       std::uint32_t max_iters, Rng& rng);

/// Index of the centroid nearest to `x` (centroids must be sorted).
std::uint32_t nearest_centroid(const std::vector<double>& centroids, double x);

}  // namespace ptb

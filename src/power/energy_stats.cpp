// EnergyAccounting is header-only; this TU anchors the library target.
#include "power/energy_stats.hpp"

// Power-token model (Section III.B of the paper).
//
// A power-token unit is the energy of one instruction staying in the ROB for
// one cycle. An instruction's consumption = base tokens (all its regular
// structure accesses, known per static instruction) + its ROB residency in
// cycles. Base tokens are "profiled" once (here: synthesized per static PC
// around per-class means, standing in for the paper's SPECint2000 run) and
// grouped with a k-means into 8 groups; the PTHT stores grouped last-run
// values. The paper reports <1% error vs exact accounting; a test asserts
// the same property for this implementation.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "isa/microop.hpp"
#include "power/kmeans.hpp"

namespace ptb {

class StatsRegistry;

class BaseEnergyModel {
 public:
  BaseEnergyModel(const PowerConfig& cfg, std::uint64_t seed);

  /// Process-wide memoized constructor: the model is a pure function of
  /// (cfg, seed) but costs a full k-means over the synthesized profiling
  /// population, which dominated CmpSimulator construction when every
  /// run_one() of a RunPool grid rebuilt it. Returns a shared immutable
  /// instance (thread-safe; exact config equality, never a hash).
  static std::shared_ptr<const BaseEnergyModel> shared(const PowerConfig& cfg,
                                                       std::uint64_t seed);

  /// Mean base tokens of an instruction class (pre-jitter).
  double class_mean(OpClass c) const {
    return class_mean_[static_cast<std::size_t>(c)];
  }

  /// "True" base tokens of the static instruction at (cls, pc): class mean
  /// with a deterministic per-PC jitter (stand-in for real profiled values).
  double exact_base(OpClass cls, Pc pc) const;

  /// Base tokens quantized to the nearest of the 8 k-means group centroids —
  /// what the hardware tables carry.
  double grouped_base(OpClass cls, Pc pc) const;

  /// Quantizes an already-computed exact base cost (callers that memoize
  /// exact_base can group without recomputing the jitter).
  double grouped_of(double exact_tokens) const {
    return centroids_[nearest_centroid(centroids_, exact_tokens)];
  }

  const std::vector<double>& centroids() const { return centroids_; }

  /// Aggregate (signed, cancelling) relative error of grouped vs exact
  /// accounting over the profiling population — the paper's <1% metric.
  double grouping_error() const { return grouping_error_; }

  /// Mean per-instruction |grouped - exact| / exact — a stricter measure
  /// that actually discriminates group counts (see the ablation bench).
  double grouping_abs_error() const { return grouping_abs_error_; }

  /// Registers the model's grouping-quality gauges and per-class means
  /// under `prefix` (src/stats). The model is immutable, so these are
  /// constants of the run.
  void register_stats(StatsRegistry& reg, const std::string& prefix)
      const PTB_REQUIRES(g_sequential_point);

 private:
  double jitter_factor(Pc pc) const;

  // Copied, not referenced: callers (tests, ad-hoc tools) routinely pass a
  // temporary config, which a stored reference would dangle on.
  PowerConfig cfg_;
  std::array<double, kNumOpClasses> class_mean_{};
  std::vector<double> centroids_;
  double grouping_error_ = 0.0;
  double grouping_abs_error_ = 0.0;
};

/// Per-core activity snapshot for one global cycle.
struct CoreActivity {
  double fetch_tokens = 0.0;        // sum of base tokens fetched this cycle
  std::uint32_t rob_occupancy = 0;  // instructions resident in the ROB
  bool active = false;              // core ticked this cycle (freq gating)
  bool gated = false;               // clock-gated (idle: empty ROB, no fetch)
  double vdd_ratio = 1.0;           // current VDD / nominal
};

/// Instantaneous core power (tokens/cycle) for one global cycle.
/// Dynamic power scales with VDD^2 and is spent only on active cycles;
/// leakage scales ~linearly with VDD and is always paid.
double core_cycle_power(const PowerConfig& cfg, const CoreActivity& a);

/// Structure-of-arrays view of every core's activity for one global cycle
/// (borrowed pointers into the simulator's CycleFrame, length n).
struct CoreActivityBatch {
  const double* fetch_exact;      // exact base tokens fetched (actual power)
  const double* fetch_estimated;  // PTHT-estimated tokens (control signal)
  const std::uint32_t* rob_occupancy;
  const std::uint8_t* active;
  const std::uint8_t* gated;
  const double* vdd_ratio;
};

/// Batched core_cycle_power over all cores of one cycle. `act[i]` receives
/// the actual-power evaluation (fetch_exact + ROB residency); `est[i]` (when
/// non-null) the control estimate (fetch_estimated only — residency is folded
/// into the stored PTHT values). Both are scaled by `scale` (the PTB wire
/// overhead factor). Bit-identical to the equivalent per-core
/// core_cycle_power calls; the batch form exists so the cycle loop evaluates
/// the model once over packed arrays instead of 2n scattered calls.
void core_cycle_power_batch(const PowerConfig& cfg, const CoreActivityBatch& b,
                            std::size_t n, double scale, double* act,
                            double* est);

/// Analytic reference peak per-core power used to define the global power
/// budget (paper: budget = 50% of the processor's peak). TDP-like: leakage +
/// uncore + a full-width fetch group at the class-mix mean cost + a full ROB.
/// Instantaneous power can transiently exceed it (as real chips exceed TDP).
double analytic_peak_core_power(const PowerConfig& cfg,
                                const CoreConfig& core);

}  // namespace ptb

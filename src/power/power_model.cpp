#include "power/power_model.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace ptb {

namespace {

// Deterministic 64-bit mix for per-PC jitter.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

BaseEnergyModel::BaseEnergyModel(const PowerConfig& cfg, std::uint64_t seed)
    : cfg_(cfg) {
  class_mean_[static_cast<std::size_t>(OpClass::kIntAlu)] = cfg.base_int_alu;
  class_mean_[static_cast<std::size_t>(OpClass::kIntMult)] = cfg.base_int_mult;
  class_mean_[static_cast<std::size_t>(OpClass::kFpAlu)] = cfg.base_fp_alu;
  class_mean_[static_cast<std::size_t>(OpClass::kFpMult)] = cfg.base_fp_mult;
  class_mean_[static_cast<std::size_t>(OpClass::kLoad)] = cfg.base_load;
  class_mean_[static_cast<std::size_t>(OpClass::kStore)] = cfg.base_store;
  class_mean_[static_cast<std::size_t>(OpClass::kBranch)] = cfg.base_branch;
  class_mean_[static_cast<std::size_t>(OpClass::kAtomicRmw)] =
      cfg.base_atomic;
  class_mean_[static_cast<std::size_t>(OpClass::kNop)] = cfg.base_nop;

  // Synthesize the profiling population the k-means groups: a few hundred
  // static instructions per class, jittered around the class mean — the
  // stand-in for the paper's SPECint2000 profiling run.
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<double> samples;
  constexpr std::uint32_t kPerClass = 512;
  samples.reserve(kPerClass * kNumOpClasses);
  for (std::uint32_t c = 0; c < kNumOpClasses; ++c) {
    for (std::uint32_t i = 0; i < kPerClass; ++i) {
      const Pc pc = (static_cast<Pc>(c) << 32) | (i * 4);
      samples.push_back(class_mean_[c] * jitter_factor(pc));
    }
  }
  KMeansResult km = kmeans_1d(samples, cfg.kmeans_groups, 64, rng);
  centroids_ = km.centroids;

  double exact_sum = 0.0;
  double grouped_sum = 0.0;
  double abs_err_sum = 0.0;
  for (double s : samples) {
    const double g = centroids_[nearest_centroid(centroids_, s)];
    exact_sum += s;
    grouped_sum += g;
    abs_err_sum += std::abs(g - s) / s;
  }
  grouping_error_ = std::abs(grouped_sum - exact_sum) / exact_sum;
  grouping_abs_error_ = abs_err_sum / static_cast<double>(samples.size());
}

double BaseEnergyModel::jitter_factor(Pc pc) const {
  // Uniform in [1 - jitter, 1 + jitter], deterministic per PC.
  const double u =
      static_cast<double>(mix64(pc) >> 11) * 0x1.0p-53;  // [0,1)
  return 1.0 + cfg_.base_jitter * (2.0 * u - 1.0);
}

double BaseEnergyModel::exact_base(OpClass cls, Pc pc) const {
  return class_mean_[static_cast<std::size_t>(cls)] * jitter_factor(pc);
}

double BaseEnergyModel::grouped_base(OpClass cls, Pc pc) const {
  return centroids_[nearest_centroid(centroids_, exact_base(cls, pc))];
}

double core_cycle_power(const PowerConfig& cfg, const CoreActivity& a) {
  const double v2 = a.vdd_ratio * a.vdd_ratio;
  double dynamic = 0.0;
  if (a.active) {
    if (a.gated) {
      dynamic = cfg.clock_gated_dynamic;
    } else {
      dynamic = a.fetch_tokens +
                static_cast<double>(a.rob_occupancy) * cfg.residency_token;
      // Structure overheads modeled as fractions of core dynamic power:
      // the PTHT itself and (when enabled) the PTB wires.
      dynamic *= 1.0 + cfg.ptht_overhead_frac;
    }
  }
  return cfg.leakage_per_core * a.vdd_ratio + cfg.uncore_per_core +
         dynamic * v2;
}

double analytic_peak_core_power(const PowerConfig& cfg,
                                const CoreConfig& core) {
  // Class-mix mean weighted toward a typical busy mix (compute-dominated,
  // see workloads/): roughly 45% int, 20% fp, 25% mem, 10% branch.
  const double mix_mean = 0.35 * cfg.base_int_alu + 0.10 * cfg.base_int_mult +
                          0.12 * cfg.base_fp_alu + 0.08 * cfg.base_fp_mult +
                          0.17 * cfg.base_load + 0.08 * cfg.base_store +
                          0.10 * cfg.base_branch;
  const double fetch_peak = cfg.peak_fetch_frac *
                            static_cast<double>(core.fetch_width) * mix_mean;
  const double rob_peak = cfg.peak_rob_frac *
                          static_cast<double>(core.rob_entries) *
                          cfg.residency_token;
  return cfg.leakage_per_core + cfg.uncore_per_core +
         (fetch_peak + rob_peak) * (1.0 + cfg.ptht_overhead_frac);
}

}  // namespace ptb

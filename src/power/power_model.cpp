#include "power/power_model.hpp"

#include <cctype>
#include <cmath>

#include "common/assert.hpp"
#include "common/thread_annotations.hpp"
#include "stats/stats.hpp"

namespace ptb {

namespace {

// Deterministic 64-bit mix for per-PC jitter.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

// Exact field-wise equality (never a hash): a false positive would silently
// hand a caller the wrong profiling population. PowerConfig is all scalars,
// so == on every member is both cheap and complete.
bool same_power_config(const PowerConfig& a, const PowerConfig& b) {
  return a.residency_token == b.residency_token &&
         a.peak_fetch_frac == b.peak_fetch_frac &&
         a.peak_rob_frac == b.peak_rob_frac &&
         a.base_int_alu == b.base_int_alu &&
         a.base_int_mult == b.base_int_mult &&
         a.base_fp_alu == b.base_fp_alu &&
         a.base_fp_mult == b.base_fp_mult && a.base_load == b.base_load &&
         a.base_store == b.base_store && a.base_branch == b.base_branch &&
         a.base_atomic == b.base_atomic && a.base_nop == b.base_nop &&
         a.base_jitter == b.base_jitter &&
         a.kmeans_groups == b.kmeans_groups &&
         a.ptht_entries == b.ptht_entries &&
         a.leakage_per_core == b.leakage_per_core &&
         a.clock_gated_dynamic == b.clock_gated_dynamic &&
         a.uncore_per_core == b.uncore_per_core &&
         a.ptht_overhead_frac == b.ptht_overhead_frac &&
         a.ptb_wire_overhead_frac == b.ptb_wire_overhead_frac &&
         a.vdd_nominal == b.vdd_nominal &&
         a.freq_nominal_ghz == b.freq_nominal_ghz;
}

}  // namespace

std::shared_ptr<const BaseEnergyModel> BaseEnergyModel::shared(
    const PowerConfig& cfg, std::uint64_t seed) {
  struct CacheEntry {
    PowerConfig cfg;
    std::uint64_t seed;
    std::shared_ptr<const BaseEnergyModel> model;
  };
  // Entries carry their guard so -Wthread-safety can prove the lock
  // discipline (a bare function-local `static std::mutex` has no
  // capability identity the analysis can name).
  struct SharedCache {
    Mutex mu;
    std::vector<CacheEntry> entries PTB_GUARDED_BY(mu);
  };
  static SharedCache* cache = new SharedCache();
  MutexLock lock(cache->mu);
  for (const CacheEntry& e : cache->entries) {
    if (e.seed == seed && same_power_config(e.cfg, cfg)) return e.model;
  }
  // Construct under the lock: racing threads duplicating the k-means would
  // cost more than the brief serialization. Bound the cache so ablation
  // sweeps over power constants cannot grow it without limit (FIFO evict;
  // live simulators keep their shared_ptr alive regardless).
  constexpr std::size_t kMaxEntries = 64;
  if (cache->entries.size() >= kMaxEntries) {
    cache->entries.erase(cache->entries.begin());
  }
  auto model = std::make_shared<const BaseEnergyModel>(cfg, seed);
  cache->entries.push_back(CacheEntry{cfg, seed, model});
  return model;
}

BaseEnergyModel::BaseEnergyModel(const PowerConfig& cfg, std::uint64_t seed)
    : cfg_(cfg) {
  class_mean_[static_cast<std::size_t>(OpClass::kIntAlu)] = cfg.base_int_alu;
  class_mean_[static_cast<std::size_t>(OpClass::kIntMult)] = cfg.base_int_mult;
  class_mean_[static_cast<std::size_t>(OpClass::kFpAlu)] = cfg.base_fp_alu;
  class_mean_[static_cast<std::size_t>(OpClass::kFpMult)] = cfg.base_fp_mult;
  class_mean_[static_cast<std::size_t>(OpClass::kLoad)] = cfg.base_load;
  class_mean_[static_cast<std::size_t>(OpClass::kStore)] = cfg.base_store;
  class_mean_[static_cast<std::size_t>(OpClass::kBranch)] = cfg.base_branch;
  class_mean_[static_cast<std::size_t>(OpClass::kAtomicRmw)] =
      cfg.base_atomic;
  class_mean_[static_cast<std::size_t>(OpClass::kNop)] = cfg.base_nop;

  // Synthesize the profiling population the k-means groups: a few hundred
  // static instructions per class, jittered around the class mean — the
  // stand-in for the paper's SPECint2000 profiling run.
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<double> samples;
  constexpr std::uint32_t kPerClass = 512;
  samples.reserve(kPerClass * kNumOpClasses);
  for (std::uint32_t c = 0; c < kNumOpClasses; ++c) {
    for (std::uint32_t i = 0; i < kPerClass; ++i) {
      const Pc pc = (static_cast<Pc>(c) << 32) | (i * 4);
      samples.push_back(class_mean_[c] * jitter_factor(pc));
    }
  }
  KMeansResult km = kmeans_1d(samples, cfg.kmeans_groups, 64, rng);
  centroids_ = km.centroids;

  double exact_sum = 0.0;
  double grouped_sum = 0.0;
  double abs_err_sum = 0.0;
  for (double s : samples) {
    const double g = centroids_[nearest_centroid(centroids_, s)];
    exact_sum += s;
    grouped_sum += g;
    abs_err_sum += std::abs(g - s) / s;
  }
  grouping_error_ = std::abs(grouped_sum - exact_sum) / exact_sum;
  grouping_abs_error_ = abs_err_sum / static_cast<double>(samples.size());
}

double BaseEnergyModel::jitter_factor(Pc pc) const {
  // Uniform in [1 - jitter, 1 + jitter], deterministic per PC.
  const double u =
      static_cast<double>(mix64(pc) >> 11) * 0x1.0p-53;  // [0,1)
  return 1.0 + cfg_.base_jitter * (2.0 * u - 1.0);
}

double BaseEnergyModel::exact_base(OpClass cls, Pc pc) const {
  return class_mean_[static_cast<std::size_t>(cls)] * jitter_factor(pc);
}

double BaseEnergyModel::grouped_base(OpClass cls, Pc pc) const {
  return centroids_[nearest_centroid(centroids_, exact_base(cls, pc))];
}

double core_cycle_power(const PowerConfig& cfg, const CoreActivity& a) {
  const double v2 = a.vdd_ratio * a.vdd_ratio;
  double dynamic = 0.0;
  if (a.active) {
    if (a.gated) {
      dynamic = cfg.clock_gated_dynamic;
    } else {
      dynamic = a.fetch_tokens +
                static_cast<double>(a.rob_occupancy) * cfg.residency_token;
      // Structure overheads modeled as fractions of core dynamic power:
      // the PTHT itself and (when enabled) the PTB wires.
      dynamic *= 1.0 + cfg.ptht_overhead_frac;
    }
  }
  return cfg.leakage_per_core * a.vdd_ratio + cfg.uncore_per_core +
         dynamic * v2;
}

void core_cycle_power_batch(const PowerConfig& cfg, const CoreActivityBatch& b,
                            std::size_t n, double scale, double* act,
                            double* est) {
  // Mirrors core_cycle_power term for term (same expressions, same
  // association) so the batch is bit-identical to the scalar calls.
  const double overhead = 1.0 + cfg.ptht_overhead_frac;
  for (std::size_t i = 0; i < n; ++i) {
    const double vdd = b.vdd_ratio[i];
    const double v2 = vdd * vdd;
    const double static_part =
        cfg.leakage_per_core * vdd + cfg.uncore_per_core;
    double dyn_act = 0.0;
    double dyn_est = 0.0;
    if (b.active[i]) {
      if (b.gated[i]) {
        dyn_act = cfg.clock_gated_dynamic;
        dyn_est = cfg.clock_gated_dynamic;
      } else {
        dyn_act = (b.fetch_exact[i] +
                   static_cast<double>(b.rob_occupancy[i]) *
                       cfg.residency_token) *
                  overhead;
        dyn_est = b.fetch_estimated[i] * overhead;
      }
    }
    act[i] = (static_part + dyn_act * v2) * scale;
    if (est) est[i] = (static_part + dyn_est * v2) * scale;
  }
}

double analytic_peak_core_power(const PowerConfig& cfg,
                                const CoreConfig& core) {
  // Class-mix mean weighted toward a typical busy mix (compute-dominated,
  // see workloads/): roughly 45% int, 20% fp, 25% mem, 10% branch.
  const double mix_mean = 0.35 * cfg.base_int_alu + 0.10 * cfg.base_int_mult +
                          0.12 * cfg.base_fp_alu + 0.08 * cfg.base_fp_mult +
                          0.17 * cfg.base_load + 0.08 * cfg.base_store +
                          0.10 * cfg.base_branch;
  const double fetch_peak = cfg.peak_fetch_frac *
                            static_cast<double>(core.fetch_width) * mix_mean;
  const double rob_peak = cfg.peak_rob_frac *
                          static_cast<double>(core.rob_entries) *
                          cfg.residency_token;
  return cfg.leakage_per_core + cfg.uncore_per_core +
         (fetch_peak + rob_peak) * (1.0 + cfg.ptht_overhead_frac);
}

void BaseEnergyModel::register_stats(StatsRegistry& reg,
                                     const std::string& prefix) const {
  reg.gauge(prefix + ".grouping_error",
            "signed relative error of grouped vs exact accounting",
            &grouping_error_, 6);
  reg.gauge(prefix + ".grouping_abs_error",
            "mean per-instruction |grouped - exact| / exact",
            &grouping_abs_error_, 6);
  reg.gauge_fn(prefix + ".groups", "k-means centroid count",
               [this] { return static_cast<double>(centroids_.size()); }, 0);
  for (std::uint32_t c = 0; c < kNumOpClasses; ++c) {
    std::string slug = op_class_name(static_cast<OpClass>(c));
    for (char& ch : slug)
      ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    reg.gauge(prefix + ".class_mean." + slug,
              "mean base tokens of the instruction class",
              &class_mean_[c], 4);
  }
}

}  // namespace ptb

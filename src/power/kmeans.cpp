#include "power/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace ptb {

std::uint32_t nearest_centroid(const std::vector<double>& centroids,
                               double x) {
  // Binary search on the sorted centroids, then compare neighbours.
  const auto it = std::lower_bound(centroids.begin(), centroids.end(), x);
  if (it == centroids.begin()) return 0;
  if (it == centroids.end())
    return static_cast<std::uint32_t>(centroids.size() - 1);
  const auto hi = static_cast<std::uint32_t>(it - centroids.begin());
  const auto lo = hi - 1;
  return (x - centroids[lo] <= centroids[hi] - x) ? lo : hi;
}

KMeansResult kmeans_1d(const std::vector<double>& samples, std::uint32_t k,
                       std::uint32_t max_iters, Rng& rng) {
  PTB_ASSERT(!samples.empty(), "k-means needs samples");
  PTB_ASSERT(k >= 1, "k must be >= 1");
  KMeansResult res;
  res.assignment.resize(samples.size());

  // k-means++ seeding: first centroid uniform, then proportional to squared
  // distance from the nearest chosen centroid.
  std::vector<double>& c = res.centroids;
  c.push_back(samples[rng.next_below(samples.size())]);
  std::vector<double> d2(samples.size());
  while (c.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (double cc : c) {
        const double d = samples[i] - cc;
        best = std::min(best, d * d);
      }
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      c.push_back(samples[rng.next_below(samples.size())]);
      continue;
    }
    double pick = rng.next_double() * total;
    std::size_t idx = 0;
    for (; idx + 1 < samples.size(); ++idx) {
      if (pick < d2[idx]) break;
      pick -= d2[idx];
    }
    c.push_back(samples[idx]);
  }
  std::sort(c.begin(), c.end());

  std::vector<double> sum(k);
  std::vector<std::uint64_t> cnt(k);
  for (std::uint32_t iter = 0; iter < max_iters; ++iter) {
    std::fill(sum.begin(), sum.end(), 0.0);
    std::fill(cnt.begin(), cnt.end(), 0ull);
    bool changed = false;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const std::uint32_t a = nearest_centroid(c, samples[i]);
      if (a != res.assignment[i]) {
        res.assignment[i] = a;
        changed = true;
      }
      sum[a] += samples[i];
      ++cnt[a];
    }
    for (std::uint32_t j = 0; j < k; ++j)
      if (cnt[j] > 0) c[j] = sum[j] / static_cast<double>(cnt[j]);
    std::sort(c.begin(), c.end());
    res.iterations = iter + 1;
    if (!changed && iter > 0) break;
  }

  res.inertia = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    res.assignment[i] = nearest_centroid(c, samples[i]);
    const double d = samples[i] - c[res.assignment[i]];
    res.inertia += d * d;
  }
  return res;
}

}  // namespace ptb

// Energy and Area-over-the-Power-Budget (AoPB) accounting.
//
// AoPB (paper Section III.A, Figure 1) is the energy between the power
// budget line and the power curve, counted only where the curve is above
// the budget. The lower the AoPB, the more accurately a technique matches
// the budget (ideal = 0).
#pragma once

#include "common/stats.hpp"
#include "common/types.hpp"

namespace ptb {

class EnergyAccounting {
 public:
  explicit EnergyAccounting(double budget_tokens_per_cycle)
      : budget_(budget_tokens_per_cycle) {}

  /// Record one global cycle of total power (tokens/cycle).
  void record_cycle(double total_power) {
    energy_ += total_power;
    if (total_power > budget_) aopb_ += total_power - budget_;
    power_stat_.add(total_power);
  }

  double budget() const { return budget_; }
  /// Total energy in tokens (1 cycle * 1 token/cycle = 1 token of energy).
  double energy() const { return energy_; }
  /// Energy above the budget line, in tokens.
  double aopb() const { return aopb_; }
  const RunningStat& power_stat() const { return power_stat_; }

  // Checkpoint support (the budget is configuration).
  void save_state(ByteWriter& w) const {
    w.f64(energy_);
    w.f64(aopb_);
    power_stat_.save_state(w);
  }
  void load_state(ByteReader& r) {
    energy_ = r.f64();
    aopb_ = r.f64();
    power_stat_.load_state(r);
  }

 private:
  double budget_;
  double energy_ = 0.0;
  double aopb_ = 0.0;
  RunningStat power_stat_;
};

}  // namespace ptb

#include "power/thermal.hpp"

#include <algorithm>
#include <cmath>

#include "stats/stats.hpp"

namespace ptb {

ThermalModel::ThermalModel(const ThermalConfig& cfg, std::uint32_t num_cores)
    : cfg_(cfg), temp_(num_cores, cfg.ambient_c), hist_(num_cores) {}

void ThermalModel::step(CoreId c, double power, double cycles) {
  const double t_steady = cfg_.ambient_c + cfg_.r_thermal * power;
  const double decay = std::exp(-cycles / cfg_.tau_cycles);
  temp_[c] = t_steady + (temp_[c] - t_steady) * decay;
  hist_[c].add(temp_[c]);
}

double ThermalModel::max_temperature() const {
  double m = cfg_.ambient_c;
  for (double t : temp_) m = std::max(m, t);
  return m;
}

void ThermalModel::register_stats(StatsRegistry& reg,
                                  const std::string& prefix) const {
  for (std::size_t c = 0; c < temp_.size(); ++c) {
    const std::string p = prefix + "." + std::to_string(c);
    reg.gauge(p + ".current_c", "current core temperature (C)", &temp_[c]);
    reg.formula(p + ".mean_c", "run-average core temperature (C)",
                [this, c] { return hist_[c].mean(); });
    reg.formula(p + ".stddev_c", "core temperature standard deviation (C)",
                [this, c] { return hist_[c].stddev(); });
  }
}

}  // namespace ptb

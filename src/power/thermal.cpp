#include "power/thermal.hpp"

#include <algorithm>
#include <cmath>

namespace ptb {

ThermalModel::ThermalModel(const ThermalConfig& cfg, std::uint32_t num_cores)
    : cfg_(cfg), temp_(num_cores, cfg.ambient_c), hist_(num_cores) {}

void ThermalModel::step(CoreId c, double power, double cycles) {
  const double t_steady = cfg_.ambient_c + cfg_.r_thermal * power;
  const double decay = std::exp(-cycles / cfg_.tau_cycles);
  temp_[c] = t_steady + (temp_[c] - t_steady) * decay;
  hist_[c].add(temp_[c]);
}

double ThermalModel::max_temperature() const {
  double m = cfg_.ambient_c;
  for (double t : temp_) m = std::max(m, t);
  return m;
}

}  // namespace ptb

// Lumped-RC thermal model, one node per core (HotSpot-lite).
//
// Used for the temperature-stability extension experiment: the paper claims
// PTB's accurate budget matching yields a lower average chip temperature
// with minimal standard deviation (Sections I and V).
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ptb {

class StatsRegistry;

class ThermalModel {
 public:
  ThermalModel(const ThermalConfig& cfg, std::uint32_t num_cores);

  /// Advance core `c` by `cycles` with average power `power` over the step.
  /// Exact exponential update of dT/dt = (T_steady - T)/tau with
  /// T_steady = ambient + R * power.
  void step(CoreId c, double power, double cycles);

  double temperature(CoreId c) const { return temp_[c]; }
  const RunningStat& history(CoreId c) const { return hist_[c]; }
  double max_temperature() const;

  /// Registers per-core temperature gauges (current + run mean/stddev)
  /// under `prefix`.N (src/stats).
  void register_stats(StatsRegistry& reg, const std::string& prefix)
      const PTB_REQUIRES(g_sequential_point);

  // Checkpoint support: node temperatures + their history stats.
  void save_state(ByteWriter& w) const {
    w.f64_vec(temp_);
    w.u64(hist_.size());
    for (const RunningStat& h : hist_) h.save_state(w);
  }
  void load_state(ByteReader& r) {
    std::vector<double> t;
    r.f64_vec(t);
    if (t.size() != temp_.size() || r.u64() != hist_.size()) {
      r.fail();
      return;
    }
    temp_ = std::move(t);
    for (RunningStat& h : hist_) h.load_state(r);
  }

 private:
  ThermalConfig cfg_;
  std::vector<double> temp_;
  std::vector<RunningStat> hist_;
};

}  // namespace ptb

// Lumped-RC thermal model, one node per core (HotSpot-lite).
//
// Used for the temperature-stability extension experiment: the paper claims
// PTB's accurate budget matching yields a lower average chip temperature
// with minimal standard deviation (Sections I and V).
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ptb {

class StatsRegistry;

class ThermalModel {
 public:
  ThermalModel(const ThermalConfig& cfg, std::uint32_t num_cores);

  /// Advance core `c` by `cycles` with average power `power` over the step.
  /// Exact exponential update of dT/dt = (T_steady - T)/tau with
  /// T_steady = ambient + R * power.
  void step(CoreId c, double power, double cycles);

  double temperature(CoreId c) const { return temp_[c]; }
  const RunningStat& history(CoreId c) const { return hist_[c]; }
  double max_temperature() const;

  /// Registers per-core temperature gauges (current + run mean/stddev)
  /// under `prefix`.N (src/stats).
  void register_stats(StatsRegistry& reg, const std::string& prefix)
      const PTB_REQUIRES(g_sequential_point);

 private:
  ThermalConfig cfg_;
  std::vector<double> temp_;
  std::vector<RunningStat> hist_;
};

}  // namespace ptb

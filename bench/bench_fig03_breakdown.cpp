// Figure 3: execution-time breakdown (lock-acquisition / lock-release /
// barrier / busy) for every benchmark at 2, 4, 8 and 16 cores.
#include "bench_util.hpp"

#include "common/table.hpp"

using namespace ptb;

int main() {
  bench::print_header("Figure 3",
                      "execution time breakdown for 2-16 cores (%)");
  Table table({"benchmark", "cores", "Lock-Acq", "Lock-Rel", "Barrier",
               "Busy"});
  TechniqueSpec none{"none", TechniqueKind::kNone, false, PtbPolicy::kToAll,
                     0.0};
  for (const auto& profile : benchmark_suite()) {
    for (std::uint32_t cores : {2u, 4u, 8u, 16u}) {
      const RunResult r = run_one(profile, make_sim_config(cores, none));
      Cycle sums[kNumExecStates] = {};
      Cycle total = 0;
      for (const auto& c : r.cores) {
        for (std::uint32_t s = 0; s < kNumExecStates; ++s) {
          sums[s] += c.state_cycles[s];
          total += c.state_cycles[s];
        }
      }
      const auto row = table.add_row();
      table.set(row, 0, profile.name);
      table.set(row, 1, static_cast<std::int64_t>(cores));
      const double t = static_cast<double>(total);
      table.set(row, 2, 100.0 * static_cast<double>(
                            sums[static_cast<int>(ExecState::kLockAcq)]) / t,
                1);
      table.set(row, 3, 100.0 * static_cast<double>(
                            sums[static_cast<int>(ExecState::kLockRel)]) / t,
                1);
      table.set(row, 4, 100.0 * static_cast<double>(
                            sums[static_cast<int>(ExecState::kBarrier)]) / t,
                1);
      table.set(row, 5, 100.0 * static_cast<double>(
                            sums[static_cast<int>(ExecState::kBusy)]) / t,
                1);
    }
  }
  table.print("Figure 3: time in each execution state (% of core-cycles)");
  return 0;
}

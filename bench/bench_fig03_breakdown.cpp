// Figure 3: execution-time breakdown (lock-acquisition / lock-release /
// barrier / busy) for every benchmark at 2, 4, 8 and 16 cores.
#include "bench_util.hpp"

#include "common/table.hpp"

using namespace ptb;

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_fig03_breakdown", "Figure 3",
                          "execution time breakdown for 2-16 cores (%)");
  Table table({"benchmark", "cores", "Lock-Acq", "Lock-Rel", "Barrier",
               "Busy"});
  const TechniqueSpec none = base_technique();
  const std::uint32_t core_counts[] = {2u, 4u, 8u, 16u};
  // All (benchmark x cores) runs are independent: fan them out and read
  // the results back in submission order.
  for (const auto& profile : benchmark_suite()) {
    for (std::uint32_t cores : core_counts) {
      ctx.pool().submit(profile, make_sim_config(cores, none));
    }
  }
  const std::vector<RunResult> results = ctx.pool().wait_all();
  std::size_t idx = 0;
  for (const auto& profile : benchmark_suite()) {
    for (std::uint32_t cores : core_counts) {
      const RunResult& r = results[idx++];
      Cycle sums[kNumExecStates] = {};
      Cycle total = 0;
      for (const auto& c : r.cores) {
        for (std::uint32_t s = 0; s < kNumExecStates; ++s) {
          sums[s] += c.state_cycles[s];
          total += c.state_cycles[s];
        }
      }
      const auto row = table.add_row();
      table.set(row, 0, profile.name);
      table.set(row, 1, static_cast<std::int64_t>(cores));
      const double t = static_cast<double>(total);
      table.set(row, 2, 100.0 * static_cast<double>(
                            sums[static_cast<int>(ExecState::kLockAcq)]) / t,
                1);
      table.set(row, 3, 100.0 * static_cast<double>(
                            sums[static_cast<int>(ExecState::kLockRel)]) / t,
                1);
      table.set(row, 4, 100.0 * static_cast<double>(
                            sums[static_cast<int>(ExecState::kBarrier)]) / t,
                1);
      table.set(row, 5, 100.0 * static_cast<double>(
                            sums[static_cast<int>(ExecState::kBusy)]) / t,
                1);
    }
  }
  ctx.show(table, "Figure 3: time in each execution state (% of core-cycles)");
  return ctx.finish();
}

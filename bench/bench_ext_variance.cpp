// Extension: statistical confidence. The paper reports single-run numbers;
// here the headline comparison (DVFS vs PTB+2Level AoPB at 16 cores) is
// replicated across 5 seeds — different synthetic instruction streams,
// addresses and lock interleavings — with mean +/- standard deviation.
#include "bench_util.hpp"

#include "common/table.hpp"

using namespace ptb;

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_ext_variance", "Seed variance",
                          "headline metrics across 5 seeds, 16 cores");

  const TechniqueSpec dvfs{"DVFS", TechniqueKind::kDvfs, false,
                           PtbPolicy::kToAll, 0.0};
  const TechniqueSpec ptb{"PTB+2Level", TechniqueKind::kTwoLevel, true,
                          PtbPolicy::kDynamic, 0.0};
  constexpr std::uint32_t kSeeds = 5;
  ctx.report().set_seeds(kSeeds);

  Table table({"benchmark", "technique", "AoPB % mean", "AoPB % std",
               "energy % mean", "slowdown % mean"});
  for (const char* bn : {"fft", "ocean", "barnes", "waternsq",
                         "blackscholes"}) {
    const auto& profile = benchmark_by_name(bn);
    for (const auto& tech : {dvfs, ptb}) {
      const ReplicatedResult r =
          run_replicated(profile, 16, tech, kSeeds, ctx.pool());
      const auto row = table.add_row();
      table.set(row, 0, profile.name);
      table.set(row, 1, tech.label);
      table.set(row, 2, r.aopb_pct.mean(), 2);
      table.set(row, 3, r.aopb_pct.stddev(), 2);
      table.set(row, 4, r.energy_pct.mean(), 2);
      table.set(row, 5, r.slowdown_pct.mean(), 2);
    }
  }
  ctx.show(table, "5-seed replication: the AoPB gap is far larger than the "
                  "seed noise");
  return ctx.finish();
}

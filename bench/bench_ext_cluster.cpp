// Extension: clustered PTB scalability (Section III.E.2). At 32 cores a
// monolithic balancer needs long wires (extrapolated ~14-cycle round trip);
// the paper proposes replicating per-8/16-core clusters instead, arguing a
// group that size already carries enough slack. This bench quantifies it.
#include "bench_util.hpp"

#include "common/table.hpp"

using namespace ptb;

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_ext_cluster", "Clustered PTB",
                          "monolithic vs per-cluster balancers at 32 cores");

  const TechniqueSpec ptb{"PTB", TechniqueKind::kTwoLevel, true,
                          PtbPolicy::kToAll, 0.0};
  struct Variant {
    const char* label;
    std::uint32_t cluster;
  };
  const Variant variants[]{
      {"monolithic (14-cyc wires)", 0},
      {"2 clusters of 16", 16},
      {"4 clusters of 8", 8},
  };
  const char* benchmarks[] = {"fft", "ocean", "barnes", "waternsq"};

  for (const char* bn : benchmarks) {
    const auto& profile = benchmark_by_name(bn);
    ctx.pool().submit([&cache = ctx.cache(), &profile] {
      return cache.get(profile, 32);
    });
    for (const auto& v : variants) {
      SimConfig cfg = make_sim_config(32, ptb);
      cfg.ptb.cluster_size = v.cluster;
      ctx.pool().submit(profile, cfg);
    }
  }
  const std::vector<RunResult> results = ctx.pool().wait_all();

  Table table({"benchmark", "variant", "energy %", "AoPB %", "slowdown %",
               "tokens granted (M)"});
  std::size_t idx = 0;
  for (const char* bn : benchmarks) {
    const auto& profile = benchmark_by_name(bn);
    const RunResult& base = results[idx++];
    for (const auto& v : variants) {
      const RunResult& r = results[idx++];
      const Normalized norm = normalize(base, r);
      const auto row = table.add_row();
      table.set(row, 0, profile.name);
      table.set(row, 1, v.label);
      table.set(row, 2, norm.energy_pct, 2);
      table.set(row, 3, norm.aopb_pct, 2);
      table.set(row, 4, norm.slowdown_pct, 2);
      table.set(row, 5, r.tokens_granted / 1e6, 2);
    }
  }
  ctx.show(table, "32-core CMP, 50% budget");
  std::printf("Clusters keep the short wire latency while retaining most of\n"
              "the balancing benefit — the paper's >16-core scaling story.\n");
  return ctx.finish();
}

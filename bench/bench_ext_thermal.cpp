// Extension experiment: temperature stability. The paper claims (Sections
// I and V) that PTB's accurate budget matching yields a lower average chip
// temperature with minimal standard deviation. Each technique runs the
// lumped-RC thermal model over the same benchmarks at 16 cores.
#include "bench_util.hpp"

#include <algorithm>

#include "common/table.hpp"

using namespace ptb;

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_ext_thermal",
                          "Thermal extension",
                          "per-core temperature mean / stability, 16 cores");

  std::vector<TechniqueSpec> techs{base_technique()};
  for (auto& t : standard_techniques(PtbPolicy::kDynamic))
    techs.push_back(t);
  const char* benchmarks[] = {"fft", "ocean", "barnes", "blackscholes"};

  for (const auto& tech : techs) {
    for (const char* bn : benchmarks) {
      ctx.pool().submit(benchmark_by_name(bn), make_sim_config(16, tech));
    }
  }
  const std::vector<RunResult> results = ctx.pool().wait_all();

  Table table({"technique", "mean temp C", "max temp C", "temp stddev C"});
  std::size_t idx = 0;
  for (const auto& tech : techs) {
    double mean = 0.0, mx = 0.0, sd = 0.0;
    int n = 0;
    for ([[maybe_unused]] const char* bn : benchmarks) {
      const RunResult& r = results[idx++];
      for (const auto& c : r.cores) {
        mean += c.temp_mean;
        sd += c.temp_std;
        mx = std::max(mx, c.temp_mean);
        ++n;
      }
    }
    const auto row = table.add_row();
    table.set(row, 0, tech.label);
    table.set(row, 1, mean / n, 2);
    table.set(row, 2, mx, 2);
    table.set(row, 3, sd / n, 3);
  }
  ctx.show(table, "Average core temperature and stability by technique");
  std::printf("PTB's per-cycle budget matching keeps the power curve "
              "flatter, which the\nRC model turns into a lower, steadier "
              "temperature than the base case.\n");
  return ctx.finish();
}

// Extension experiment: temperature stability. The paper claims (Sections
// I and V) that PTB's accurate budget matching yields a lower average chip
// temperature with minimal standard deviation. Each technique runs the
// lumped-RC thermal model over the same benchmarks at 16 cores.
#include "bench_util.hpp"

#include <algorithm>

#include "common/table.hpp"

using namespace ptb;

int main() {
  bench::print_header("Thermal extension",
                      "per-core temperature mean / stability, 16 cores");

  std::vector<TechniqueSpec> techs{
      {"none", TechniqueKind::kNone, false, PtbPolicy::kToAll, 0.0}};
  for (auto& t : standard_techniques(PtbPolicy::kDynamic))
    techs.push_back(t);

  Table table({"technique", "mean temp C", "max temp C", "temp stddev C"});
  for (const auto& tech : techs) {
    double mean = 0.0, mx = 0.0, sd = 0.0;
    int n = 0;
    for (const char* bn : {"fft", "ocean", "barnes", "blackscholes"}) {
      const RunResult r =
          run_one(benchmark_by_name(bn), make_sim_config(16, tech));
      for (const auto& c : r.cores) {
        mean += c.temp_mean;
        sd += c.temp_std;
        mx = std::max(mx, c.temp_mean);
        ++n;
      }
    }
    const auto row = table.add_row();
    table.set(row, 0, tech.label);
    table.set(row, 1, mean / n, 2);
    table.set(row, 2, mx, 2);
    table.set(row, 3, sd / n, 3);
  }
  table.print("Average core temperature and stability by technique");
  std::printf("PTB's per-cycle budget matching keeps the power curve "
              "flatter, which the\nRC model turns into a lower, steadier "
              "temperature than the base case.\n");
  return 0;
}

// Figure 4: power consumed while spinning, normalized to total power, for
// a varying number of cores. The paper reports ~10% on average at 16 cores
// — enough to exploit, not enough on its own to hold a 50% budget.
#include "bench_util.hpp"

#include "common/table.hpp"

using namespace ptb;

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_fig04_spinpower", "Figure 4",
                          "spin power as % of total CMP energy");
  Table table({"benchmark", "2 cores", "4 cores", "8 cores", "16 cores"});
  const TechniqueSpec none = base_technique();
  const std::uint32_t core_counts[] = {2u, 4u, 8u, 16u};
  for (const auto& profile : benchmark_suite()) {
    for (std::uint32_t cores : core_counts) {
      ctx.pool().submit(profile, make_sim_config(cores, none));
    }
  }
  const std::vector<RunResult> results = ctx.pool().wait_all();
  std::size_t idx = 0;
  double avg[4] = {0, 0, 0, 0};
  for (const auto& profile : benchmark_suite()) {
    const auto row = table.add_row();
    table.set(row, 0, profile.name);
    int col = 1;
    for ([[maybe_unused]] std::uint32_t cores : core_counts) {
      const RunResult& r = results[idx++];
      const double pct = 100.0 * r.spin_energy / r.energy;
      table.set(row, col, pct, 1);
      avg[col - 1] += pct;
      ++col;
    }
  }
  const auto row = table.add_row();
  table.set(row, 0, "Avg.");
  const double n = static_cast<double>(benchmark_suite().size());
  for (int c = 0; c < 4; ++c) table.set(row, c + 1, avg[c] / n, 1);
  ctx.show(table, "Figure 4: normalized spinlock power (%)");
  return ctx.finish();
}

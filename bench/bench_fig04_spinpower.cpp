// Figure 4: power consumed while spinning, normalized to total power, for
// a varying number of cores. The paper reports ~10% on average at 16 cores
// — enough to exploit, not enough on its own to hold a 50% budget.
#include "bench_util.hpp"

#include "common/table.hpp"

using namespace ptb;

int main() {
  bench::print_header("Figure 4", "spin power as % of total CMP energy");
  Table table({"benchmark", "2 cores", "4 cores", "8 cores", "16 cores"});
  TechniqueSpec none{"none", TechniqueKind::kNone, false, PtbPolicy::kToAll,
                     0.0};
  double avg[4] = {0, 0, 0, 0};
  for (const auto& profile : benchmark_suite()) {
    const auto row = table.add_row();
    table.set(row, 0, profile.name);
    int col = 1;
    for (std::uint32_t cores : {2u, 4u, 8u, 16u}) {
      const RunResult r = run_one(profile, make_sim_config(cores, none));
      const double pct = 100.0 * r.spin_energy / r.energy;
      table.set(row, col, pct, 1);
      avg[col - 1] += pct;
      ++col;
    }
  }
  const auto row = table.add_row();
  table.set(row, 0, "Avg.");
  const double n = static_cast<double>(benchmark_suite().size());
  for (int c = 0; c < 4; ++c) table.set(row, c + 1, avg[c] / n, 1);
  table.print("Figure 4: normalized spinlock power (%)");
  return 0;
}

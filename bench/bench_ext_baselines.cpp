// Extension: the prior-art energy mechanisms of Section II.C — thrifty
// barriers (HPCA'04 [13]) and meeting points (PACT'08 [11]) — against PTB.
// The paper's argument made quantitative: both baselines save energy around
// synchronization but leave the budget-matching error (AoPB) essentially
// untouched, because neither enforces a power constraint.
#include "bench_util.hpp"

#include "common/table.hpp"

using namespace ptb;

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_ext_baselines",
                          "Prior-art baselines",
                          "thrifty barrier & meeting points vs PTB, 16 cores");

  const std::vector<TechniqueSpec> techs{
      {"ThriftyBarrier", TechniqueKind::kThriftyBarrier, false,
       PtbPolicy::kToAll, 0.0},
      {"MeetingPoints", TechniqueKind::kMeetingPoints, false,
       PtbPolicy::kToAll, 0.0},
      {"PTB+2Level", TechniqueKind::kTwoLevel, true, PtbPolicy::kDynamic,
       0.0},
  };
  const char* benchmarks[] = {"ocean", "tomcatv", "barnes", "radix",
                              "watersp", "unstructured"};

  for (const char* bn : benchmarks) {
    const auto& profile = benchmark_by_name(bn);
    ctx.pool().submit([&cache = ctx.cache(), &profile] {
      return cache.get(profile, 16);
    });
    for (const auto& t : techs) {
      ctx.pool().submit(profile, make_sim_config(16, t));
    }
  }
  const std::vector<RunResult> results = ctx.pool().wait_all();

  Table table({"benchmark", "technique", "energy %", "AoPB %",
               "slowdown %"});
  std::size_t idx = 0;
  for (const char* bn : benchmarks) {
    const auto& profile = benchmark_by_name(bn);
    const RunResult& base = results[idx++];
    for (const auto& t : techs) {
      const Normalized norm = normalize(base, results[idx++]);
      const auto row = table.add_row();
      table.set(row, 0, profile.name);
      table.set(row, 1, t.label);
      table.set(row, 2, norm.energy_pct, 2);
      table.set(row, 3, norm.aopb_pct, 2);
      table.set(row, 4, norm.slowdown_pct, 2);
    }
  }
  ctx.show(table,
           "Energy mechanisms do not match budgets (AoPB stays near 100%)");
  std::printf(
      "Thrifty barriers / meeting points cut synchronization energy but\n"
      "cannot bound instantaneous power — the paper's case for PTB.\n");
  return ctx.finish();
}

// Extension: the prior-art energy mechanisms of Section II.C — thrifty
// barriers (HPCA'04 [13]) and meeting points (PACT'08 [11]) — against PTB.
// The paper's argument made quantitative: both baselines save energy around
// synchronization but leave the budget-matching error (AoPB) essentially
// untouched, because neither enforces a power constraint.
#include "bench_util.hpp"

#include "common/table.hpp"

using namespace ptb;

int main() {
  bench::print_header("Prior-art baselines",
                      "thrifty barrier & meeting points vs PTB, 16 cores");

  const std::vector<TechniqueSpec> techs{
      {"ThriftyBarrier", TechniqueKind::kThriftyBarrier, false,
       PtbPolicy::kToAll, 0.0},
      {"MeetingPoints", TechniqueKind::kMeetingPoints, false,
       PtbPolicy::kToAll, 0.0},
      {"PTB+2Level", TechniqueKind::kTwoLevel, true, PtbPolicy::kDynamic,
       0.0},
  };

  Table table({"benchmark", "technique", "energy %", "AoPB %",
               "slowdown %"});
  BaseRunCache cache;
  for (const char* bn :
       {"ocean", "tomcatv", "barnes", "radix", "watersp", "unstructured"}) {
    const auto& profile = benchmark_by_name(bn);
    const RunResult& base = cache.get(profile, 16);
    for (const auto& t : techs) {
      const RunResult r = run_one(profile, make_sim_config(16, t));
      const Normalized norm = normalize(base, r);
      const auto row = table.add_row();
      table.set(row, 0, profile.name);
      table.set(row, 1, t.label);
      table.set(row, 2, norm.energy_pct, 2);
      table.set(row, 3, norm.aopb_pct, 2);
      table.set(row, 4, norm.slowdown_pct, 2);
    }
  }
  table.print(
      "Energy mechanisms do not match budgets (AoPB stays near 100%)");
  std::printf(
      "Thrifty barriers / meeting points cut synchronization energy but\n"
      "cannot bound instantaneous power — the paper's case for PTB.\n");
  return 0;
}

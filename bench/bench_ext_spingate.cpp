// Extension: the paper's stated future work (Section IV.C) — "higher energy
// savings could be achieved if we use PTB as a spinlock detector and we
// disable the spinning cores to save power". Detected spinners (by power
// pattern alone) are duty-cycle fetch-gated; this bench quantifies the
// extra energy saved on the spin-heavy benchmarks and the performance cost.
#include "bench_util.hpp"

#include "common/table.hpp"

using namespace ptb;

int main() {
  bench::print_header("Spin-gating extension",
                      "PTB as a spin detector that gates spinning cores");

  TechniqueSpec ptb{"PTB", TechniqueKind::kTwoLevel, true, PtbPolicy::kToAll,
                    0.0};
  BaseRunCache cache;
  Table table({"benchmark", "PTB energy %", "+gate energy %",
               "PTB slowdown %", "+gate slowdown %", "gated Mcycles"});
  double e0 = 0, e1 = 0;
  int n = 0;
  for (const char* bn :
       {"unstructured", "fluidanimate", "waternsq", "raytrace", "ocean",
        "barnes", "fft", "blackscholes"}) {
    const auto& profile = benchmark_by_name(bn);
    const RunResult& base = cache.get(profile, 16);
    const RunResult plain = run_one(profile, make_sim_config(16, ptb));
    SimConfig gated_cfg = make_sim_config(16, ptb);
    gated_cfg.ptb.gate_spinners = true;
    const RunResult gated = run_one(profile, gated_cfg);
    const Normalized np = normalize(base, plain);
    const Normalized ng = normalize(base, gated);
    const auto row = table.add_row();
    table.set(row, 0, profile.name);
    table.set(row, 1, np.energy_pct, 2);
    table.set(row, 2, ng.energy_pct, 2);
    table.set(row, 3, np.slowdown_pct, 2);
    table.set(row, 4, ng.slowdown_pct, 2);
    table.set(row, 5,
              static_cast<double>(gated.spin_gated_cycles) / 1e6, 2);
    e0 += np.energy_pct;
    e1 += ng.energy_pct;
    ++n;
  }
  table.print("PTB vs PTB + power-pattern spinner gating (16 cores)");
  std::printf("Average energy: PTB %.2f%% -> with gating %.2f%%\n",
              e0 / n, e1 / n);
  return 0;
}

// Extension: the paper's stated future work (Section IV.C) — "higher energy
// savings could be achieved if we use PTB as a spinlock detector and we
// disable the spinning cores to save power". Detected spinners (by power
// pattern alone) are duty-cycle fetch-gated; this bench quantifies the
// extra energy saved on the spin-heavy benchmarks and the performance cost.
#include "bench_util.hpp"

#include "common/table.hpp"

using namespace ptb;

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_ext_spingate",
                          "Spin-gating extension",
                          "PTB as a spin detector that gates spinning cores");

  const TechniqueSpec ptb{"PTB", TechniqueKind::kTwoLevel, true,
                          PtbPolicy::kToAll, 0.0};
  const char* benchmarks[] = {"unstructured", "fluidanimate", "waternsq",
                              "raytrace", "ocean", "barnes", "fft",
                              "blackscholes"};
  // Per benchmark: base (through the cache), plain PTB, and gated PTB.
  for (const char* bn : benchmarks) {
    const auto& profile = benchmark_by_name(bn);
    ctx.pool().submit([&cache = ctx.cache(), &profile] {
      return cache.get(profile, 16);
    });
    ctx.pool().submit(profile, make_sim_config(16, ptb));
    SimConfig gated_cfg = make_sim_config(16, ptb);
    gated_cfg.ptb.gate_spinners = true;
    ctx.pool().submit(profile, gated_cfg);
  }
  const std::vector<RunResult> results = ctx.pool().wait_all();

  Table table({"benchmark", "PTB energy %", "+gate energy %",
               "PTB slowdown %", "+gate slowdown %", "gated Mcycles"});
  double e0 = 0, e1 = 0;
  int n = 0;
  std::size_t idx = 0;
  for (const char* bn : benchmarks) {
    const auto& profile = benchmark_by_name(bn);
    const RunResult& base = results[idx];
    const RunResult& plain = results[idx + 1];
    const RunResult& gated = results[idx + 2];
    idx += 3;
    const Normalized np = normalize(base, plain);
    const Normalized ng = normalize(base, gated);
    const auto row = table.add_row();
    table.set(row, 0, profile.name);
    table.set(row, 1, np.energy_pct, 2);
    table.set(row, 2, ng.energy_pct, 2);
    table.set(row, 3, np.slowdown_pct, 2);
    table.set(row, 4, ng.slowdown_pct, 2);
    table.set(row, 5,
              static_cast<double>(gated.spin_gated_cycles) / 1e6, 2);
    e0 += np.energy_pct;
    e1 += ng.energy_pct;
    ++n;
  }
  ctx.show(table, "PTB vs PTB + power-pattern spinner gating (16 cores)");
  std::printf("Average energy: PTB %.2f%% -> with gating %.2f%%\n",
              e0 / n, e1 / n);
  return ctx.finish();
}

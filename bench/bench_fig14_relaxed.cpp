// Figure 14: trading accuracy for energy efficiency (Section IV.C). The
// "Restricted PTB" column relaxes the trigger threshold by 20%: power-
// saving mechanisms engage only when the (PTB-augmented) local budget is
// exceeded by more than the slack, recovering DVFS-class energy savings
// while staying far more accurate than DVFS.
#include "bench_util.hpp"

#include "common/table.hpp"

using namespace ptb;

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_fig14_relaxed", "Figure 14",
                          "relaxed-accuracy PTB (+20% threshold), 2-16 cores");

  Table energy({"configuration", "DVFS", "DFS", "2Level", "PTB+2Level",
                "Restricted PTB+2Level"});
  Table aopb({"configuration", "DVFS", "DFS", "2Level", "PTB+2Level",
              "Restricted PTB+2Level"});
  for (std::uint32_t cores : {2u, 4u, 8u, 16u}) {
    // Non-PTB columns are policy-independent: run once per core count.
    const auto naive_avg =
        run_suite_averages(cores, naive_techniques(), ctx.cache(), ctx.pool());
    for (PtbPolicy policy : {PtbPolicy::kToOne, PtbPolicy::kToAll}) {
      const std::vector<TechniqueSpec> ptb_cols{
          {"PTB+2Level", TechniqueKind::kTwoLevel, true, policy, 0.0},
          {"Restricted PTB+2Level", TechniqueKind::kTwoLevel, true, policy,
           0.20},
      };
      const auto ptb_avg =
          run_suite_averages(cores, ptb_cols, ctx.cache(), ctx.pool());
      const std::string label =
          std::to_string(cores) + "Core_" +
          (policy == PtbPolicy::kToOne ? "ToOne" : "ToAll");
      const auto er = energy.add_row();
      const auto ar = aopb.add_row();
      energy.set(er, 0, label);
      aopb.set(ar, 0, label);
      for (std::size_t i = 0; i < naive_avg.size(); ++i) {
        energy.set(er, i + 1, naive_avg[i].energy_pct, 2);
        aopb.set(ar, i + 1, naive_avg[i].aopb_pct, 2);
      }
      for (std::size_t i = 0; i < ptb_avg.size(); ++i) {
        energy.set(er, i + 4, ptb_avg[i].energy_pct, 2);
        aopb.set(ar, i + 4, ptb_avg[i].aopb_pct, 2);
      }
    }
  }
  ctx.show(energy, "Figure 14 (left): normalized energy (%)");
  ctx.show(aopb, "Figure 14 (right): normalized AoPB (%)");
  return ctx.finish();
}

// Figure 11: per-benchmark normalized energy and AoPB for a 16-core CMP
// with the ToOne PTB token-distribution policy (everything to the single
// neediest core — best for lock-bound workloads like Unstructured and
// Water-NSQ, whose critical sections serialize the application).
#include "bench_util.hpp"

using namespace ptb;

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_fig11_toone", "Figure 11",
                          "16-core detail, PTB policy = ToOne");
  FigureGrid grid = run_suite_grid(16, standard_techniques(PtbPolicy::kToOne),
                                   ctx.cache(), ctx.pool());
  grid.append_average();
  ctx.show_energy_aopb(grid, "Figure 11 (16 cores, ToOne)");
  return ctx.finish();
}

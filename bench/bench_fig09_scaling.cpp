// Figure 9: suite-average normalized energy and AoPB for 2-16 cores under
// both PTB token-distribution policies (ToOne / ToAll), against DVFS, DFS
// and the naive 2-level hybrid.
#include "bench_util.hpp"

#include "common/table.hpp"

using namespace ptb;

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_fig09_scaling", "Figure 9",
                          "suite averages for 2-16 cores and both PTB "
                          "policies");

  Table energy({"configuration", "DVFS", "DFS", "2Level", "PTB+2Level"});
  Table aopb({"configuration", "DVFS", "DFS", "2Level", "PTB+2Level"});
  for (std::uint32_t cores : {2u, 4u, 8u, 16u}) {
    // The non-PTB columns do not depend on the policy: run them once.
    const auto naive_avg =
        run_suite_averages(cores, naive_techniques(), ctx.cache(), ctx.pool());
    for (PtbPolicy policy : {PtbPolicy::kToOne, PtbPolicy::kToAll}) {
      const std::vector<TechniqueSpec> ptb_only{
          standard_techniques(policy).back()};
      const auto ptb_avg =
          run_suite_averages(cores, ptb_only, ctx.cache(), ctx.pool());
      const std::string label =
          std::to_string(cores) + "Core_" +
          (policy == PtbPolicy::kToOne ? "ToOne" : "ToAll");
      const auto er = energy.add_row();
      const auto ar = aopb.add_row();
      energy.set(er, 0, label);
      aopb.set(ar, 0, label);
      for (std::size_t i = 0; i < naive_avg.size(); ++i) {
        energy.set(er, i + 1, naive_avg[i].energy_pct, 2);
        aopb.set(ar, i + 1, naive_avg[i].aopb_pct, 2);
      }
      energy.set(er, 4, ptb_avg[0].energy_pct, 2);
      aopb.set(ar, 4, ptb_avg[0].aopb_pct, 2);
    }
  }
  ctx.show(energy, "Figure 9 (left): normalized energy (%)");
  ctx.show(aopb, "Figure 9 (right): normalized AoPB (%)");
  return ctx.finish();
}

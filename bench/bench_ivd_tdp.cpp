// Section IV.D of the paper: why accuracy matters. Using each technique's
// measured budget-matching error (its suite-average AoPB fraction at 16
// cores), compute how many cores fit in a fixed 100 W TDP when the budget
// is set to 50% per core — the paper's 19 (DVFS) vs 22 (2Level) vs 29
// (PTB) cores example.
#include "bench_util.hpp"

#include <cmath>

#include "common/table.hpp"

using namespace ptb;

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_ivd_tdp", "Section IV.D",
                          "cores per 100 W TDP from measured accuracy");

  const auto avg =
      run_suite_averages(16, standard_techniques(PtbPolicy::kDynamic),
                         ctx.cache(), ctx.pool());

  // The paper's arithmetic: 16-core, 100 W TDP -> 6.25 W/core; a 50%
  // budget targets 3.125 W/core; a technique with AoPB error e consumes
  // 3.125 * (1 + e) and the core count at 100 W follows.
  constexpr double kTdp = 100.0;
  constexpr double kPerCore = kTdp / 16.0;
  constexpr double kTarget = kPerCore * 0.5;

  Table table({"technique", "AoPB error %", "W per core", "cores @ 100 W"});
  auto add = [&](const std::string& name, double aopb_pct) {
    const double err = aopb_pct / 100.0;
    const double watts = kTarget * (1.0 + err);
    const auto row = table.add_row();
    table.set(row, 0, name);
    table.set(row, 1, aopb_pct, 1);
    table.set(row, 2, watts, 3);
    table.set(row, 3, static_cast<std::int64_t>(std::floor(kTdp / watts)));
  };
  add("ideal (zero error)", 0.0);
  add("DVFS", avg[0].aopb_pct);
  add("DFS", avg[1].aopb_pct);
  add("2Level", avg[2].aopb_pct);
  add("PTB+2Level", avg[3].aopb_pct);
  ctx.show(table, "Section IV.D: accuracy converts into cores under one TDP");
  std::printf("(The paper's numbers with its errors: DVFS 19, 2Level 22, "
              "PTB 29 cores.)\n");
  return ctx.finish();
}

// Google-benchmark microbenchmarks of the simulator substrates: simulation
// throughput, PTHT access, k-means grouping, mesh routing, balancer cycle.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/balancer.hpp"
#include "mem/memory_system.hpp"
#include "noc/mesh.hpp"
#include "power/kmeans.hpp"
#include "power/ptht.hpp"
#include "sim/experiment.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace ptb;

void BM_PthtLookup(benchmark::State& state) {
  Ptht t(8192);
  for (Pc pc = 0; pc < 8192; ++pc) t.update(pc * 4, 12.5);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.lookup(rng.next_below(8192) * 4, 10.0));
  }
}
BENCHMARK(BM_PthtLookup);

void BM_PthtUpdate(benchmark::State& state) {
  Ptht t(8192);
  Rng rng(2);
  for (auto _ : state) {
    t.update(rng.next_below(8192) * 4, 12.5);
  }
  benchmark::DoNotOptimize(t.lookups);
}
BENCHMARK(BM_PthtUpdate);

void BM_KMeans8Groups(benchmark::State& state) {
  std::vector<double> samples;
  Rng data(3);
  for (int i = 0; i < 4608; ++i) samples.push_back(data.next_double() * 100);
  for (auto _ : state) {
    Rng rng(4);
    benchmark::DoNotOptimize(kmeans_1d(samples, 8, 64, rng));
  }
}
BENCHMARK(BM_KMeans8Groups);

void BM_MeshRoute(benchmark::State& state) {
  NocConfig cfg;
  Mesh mesh(cfg, 4, 4);
  Rng rng(5);
  Cycle now = 0;
  for (auto _ : state) {
    const auto from = static_cast<std::uint32_t>(rng.next_below(16));
    const auto to = static_cast<std::uint32_t>(rng.next_below(16));
    benchmark::DoNotOptimize(mesh.route(from, to, 72, now));
    now += 4;
  }
}
BENCHMARK(BM_MeshRoute);

void BM_BalancerCycle(benchmark::State& state) {
  const auto cores = static_cast<std::uint32_t>(state.range(0));
  PtbConfig cfg;
  cfg.enabled = true;
  PtbLoadBalancer b(cfg, cores, 100.0);
  Rng rng(6);
  std::vector<double> power(cores), eff;
  for (auto& p : power) p = rng.next_double() * 200.0;
  Cycle now = 0;
  for (auto _ : state) {
    b.cycle(now++, power, true, PtbPolicy::kToAll, eff);
  }
  state.SetItemsProcessed(state.iterations() * cores);
}
BENCHMARK(BM_BalancerCycle)->Arg(4)->Arg(16);

void BM_MemoryAccessL1Hit(benchmark::State& state) {
  SimConfig cfg;
  cfg.num_cores = 4;
  Mesh mesh(cfg.noc, 2, 2);
  MemorySystem mem(cfg, mesh);
  mem.access(0, MemAccessType::kLoad, 0x1000, 0);
  Cycle now = 10000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mem.access(0, MemAccessType::kLoad, 0x1000, now));
    ++now;
  }
}
BENCHMARK(BM_MemoryAccessL1Hit);

void BM_SimulatorThroughput(benchmark::State& state) {
  // Whole-CMP throughput in simulated core-cycles per second.
  const auto cores = static_cast<std::uint32_t>(state.range(0));
  const auto& profile = benchmark_by_name("blackscholes");
  TechniqueSpec none{"none", TechniqueKind::kNone, false, PtbPolicy::kToAll,
                     0.0};
  std::uint64_t core_cycles = 0;
  for (auto _ : state) {
    const RunResult r = run_one(profile, make_sim_config(cores, none));
    core_cycles += r.cycles * cores;
    benchmark::DoNotOptimize(r.energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(core_cycles));
}
BENCHMARK(BM_SimulatorThroughput)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorWithPtb(benchmark::State& state) {
  const auto& profile = benchmark_by_name("blackscholes");
  TechniqueSpec ptb{"ptb", TechniqueKind::kTwoLevel, true, PtbPolicy::kToAll,
                    0.0};
  std::uint64_t core_cycles = 0;
  for (auto _ : state) {
    const RunResult r = run_one(profile, make_sim_config(8, ptb));
    core_cycles += r.cycles * 8;
    benchmark::DoNotOptimize(r.energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(core_cycles));
}
BENCHMARK(BM_SimulatorWithPtb)->Unit(benchmark::kMillisecond);

void BM_SimulatorTracing(benchmark::State& state) {
  // Event-tracing overhead on the paper's headline configuration:
  // arg 0 = tracing off, 1 = token category only, 2 = all categories.
  const auto& profile = benchmark_by_name("fft");
  TechniqueSpec dyn{"dyn", TechniqueKind::kTwoLevel, true,
                    PtbPolicy::kDynamic, 0.0};
  RunOptions opts;
  if (state.range(0) == 1)
    opts.trace_categories = trace_category_bit(TraceCategory::kToken);
  if (state.range(0) == 2) opts.trace_categories = kTraceAll;
  std::uint64_t core_cycles = 0;
  for (auto _ : state) {
    const RunResult r = run_one(profile, make_sim_config(16, dyn), opts);
    core_cycles += r.cycles * 16;
    benchmark::DoNotOptimize(r.energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(core_cycles));
}
BENCHMARK(BM_SimulatorTracing)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorStats(benchmark::State& state) {
  // Stats-registry overhead on the paper's headline configuration:
  // arg 0 = stats off, 1 = registration on but no sampling (the
  // acceptance budget: <= 2% over arg 0), 2 = sampling every 4096 cycles.
  const auto& profile = benchmark_by_name("fft");
  TechniqueSpec dyn{"dyn", TechniqueKind::kTwoLevel, true,
                    PtbPolicy::kDynamic, 0.0};
  RunOptions opts;
  if (state.range(0) == 1) opts.stats = true;
  if (state.range(0) == 2) opts.stats_sample_every = 4096;
  std::uint64_t core_cycles = 0;
  for (auto _ : state) {
    const RunResult r = run_one(profile, make_sim_config(16, dyn), opts);
    core_cycles += r.cycles * 16;
    benchmark::DoNotOptimize(r.energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(core_cycles));
}
BENCHMARK(BM_SimulatorStats)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Accept the shared bench CLI (--jobs / --sim-threads / --json) so drivers
// can treat every bench binary uniformly: the microbenchmarks are
// single-process timing loops, so --jobs is accepted and ignored,
// --sim-threads shards the cores inside every timed simulation (the
// intra-run scaling knob BM_SimulatorThroughput measures), and --json maps
// onto google-benchmark's native JSON reporter.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.emplace_back(argc > 0 ? argv[0] : "bench_micro");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" || arg == "-j") {
      ++i;  // value consumed and ignored (timing loops are serial)
    } else if (arg.rfind("--jobs=", 0) == 0) {
      // ignored
    } else if (arg == "--sim-threads" && i + 1 < argc) {
      ptb::set_default_sim_threads(static_cast<std::uint32_t>(
          std::strtoul(argv[++i], nullptr, 10)));
    } else if (arg.rfind("--sim-threads=", 0) == 0) {
      ptb::set_default_sim_threads(static_cast<std::uint32_t>(
          std::strtoul(arg.c_str() + 14, nullptr, 10)));
    } else if (arg == "--json" && i + 1 < argc) {
      args.push_back(std::string("--benchmark_out=") + argv[++i]);
      args.emplace_back("--benchmark_out_format=json");
    } else if (arg.rfind("--json=", 0) == 0) {
      args.push_back("--benchmark_out=" + arg.substr(7));
      args.emplace_back("--benchmark_out_format=json");
    } else {
      args.push_back(arg);
    }
  }
  std::vector<char*> cargs;
  for (auto& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

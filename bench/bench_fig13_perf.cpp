// Figure 13: per-benchmark performance slowdown for a 16-core CMP with the
// dynamic policy selector. The paper's observation: PTB stays within ~2% of
// DVFS on average while matching the budget far more accurately;
// Unstructured is the worst case for the microarchitectural techniques.
#include "bench_util.hpp"

using namespace ptb;

int main() {
  bench::print_header("Figure 13",
                      "performance slowdown, 16 cores, dynamic selector");
  BaseRunCache cache;
  FigureGrid grid =
      bench::run_suite_grid(16, standard_techniques(PtbPolicy::kDynamic),
                            cache);
  grid.append_average();
  print_slowdown(grid, "Figure 13 (16 cores, dynamic policy)");
  return 0;
}

// Figure 13: per-benchmark performance slowdown for a 16-core CMP with the
// dynamic policy selector. The paper's observation: PTB stays within ~2% of
// DVFS on average while matching the budget far more accurately;
// Unstructured is the worst case for the microarchitectural techniques.
#include "bench_util.hpp"

using namespace ptb;

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_fig13_perf", "Figure 13",
                          "performance slowdown, 16 cores, dynamic selector");
  FigureGrid grid =
      run_suite_grid(16, standard_techniques(PtbPolicy::kDynamic), ctx.cache(),
                     ctx.pool());
  grid.append_average();
  ctx.show_slowdown(grid, "Figure 13 (16 cores, dynamic policy)");
  return ctx.finish();
}

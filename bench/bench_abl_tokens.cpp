// Ablations of PTB's design constants (DESIGN.md "design choices"):
//   1. token-wire width (2/4/8 bits; paper uses 4 wires each way),
//   2. balancer round-trip latency (3/5/10 cycles per the paper's Xilinx
//      estimates, plus the pessimistic 10-cycle and a 20-cycle stress),
//   3. k-means group count (paper: 8 groups -> <1% accounting error),
//   4. PTHT size.
#include "bench_util.hpp"

#include "common/table.hpp"
#include "power/power_model.hpp"

using namespace ptb;

namespace {

double aopb_pct(const RunResult& base, const RunResult& r) {
  return base.aopb > 0 ? 100.0 * r.aopb / base.aopb : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_abl_tokens", "Ablations",
                          "PTB design-constant sensitivity");
  const auto& fft = benchmark_by_name("fft");
  const auto& unstructured = benchmark_by_name("unstructured");
  const auto& ocean = benchmark_by_name("ocean");
  const WorkloadProfile* profiles[] = {&fft, &ocean, &unstructured};

  const TechniqueSpec ptb{"PTB", TechniqueKind::kTwoLevel, true,
                          PtbPolicy::kToAll, 0.0};
  // Warm the three 8-core base runs concurrently; later sections hit the
  // cache.
  for (const auto* p : profiles) {
    ctx.pool().submit(
        [&cache = ctx.cache(), p] { return cache.get(*p, 8); });
  }
  ctx.pool().wait_all();

  {
    Table t({"wire bits", "fft AoPB %", "ocean AoPB %", "unstr AoPB %"});
    const std::uint32_t widths[] = {2u, 4u, 8u};
    for (std::uint32_t bits : widths) {
      for (const auto* p : profiles) {
        SimConfig cfg = make_sim_config(8, ptb);
        cfg.ptb.token_wire_bits = bits;
        ctx.pool().submit(*p, cfg);
      }
    }
    const auto results = ctx.pool().wait_all();
    std::size_t idx = 0;
    for (std::uint32_t bits : widths) {
      const auto row = t.add_row();
      t.set(row, 0, static_cast<std::int64_t>(bits));
      for (std::size_t c = 0; c < 3; ++c) {
        t.set(row, c + 1,
              aopb_pct(ctx.cache().get(*profiles[c], 8), results[idx++]), 2);
      }
    }
    ctx.show(t, "Ablation 1: token-wire width (8 cores; paper uses 4 bits)");
  }
  {
    Table t({"wire latency", "fft AoPB %", "ocean AoPB %", "unstr AoPB %"});
    const std::uint32_t latencies[] = {3u, 5u, 10u, 20u};
    for (std::uint32_t lat : latencies) {
      for (const auto* p : profiles) {
        SimConfig cfg = make_sim_config(8, ptb);
        cfg.ptb.wire_latency_override = lat;
        ctx.pool().submit(*p, cfg);
      }
    }
    const auto results = ctx.pool().wait_all();
    std::size_t idx = 0;
    for (std::uint32_t lat : latencies) {
      const auto row = t.add_row();
      t.set(row, 0, static_cast<std::int64_t>(lat));
      for (std::size_t c = 0; c < 3; ++c) {
        t.set(row, c + 1,
              aopb_pct(ctx.cache().get(*profiles[c], 8), results[idx++]), 2);
      }
    }
    ctx.show(t, "Ablation 2: balancer round-trip latency (cycles)");
  }
  {
    // Analytic (no simulation): stays on the calling thread.
    Table t({"k-means groups", "aggregate error %", "per-instr |error| %"});
    for (std::uint32_t k : {2u, 4u, 8u, 16u, 32u}) {
      PowerConfig pcfg;
      pcfg.kmeans_groups = k;
      BaseEnergyModel m(pcfg, 1);
      const auto row = t.add_row();
      t.set(row, 0, static_cast<std::int64_t>(k));
      t.set(row, 1, 100.0 * m.grouping_error(), 4);
      t.set(row, 2, 100.0 * m.grouping_abs_error(), 3);
    }
    ctx.show(t, "Ablation 3: instruction grouping (paper: 8 groups, <1% "
                "error)");
  }
  {
    Table t({"PTHT entries", "fft AoPB %", "fft energy %"});
    const std::uint32_t sizes[] = {512u, 2048u, 8192u};
    for (std::uint32_t entries : sizes) {
      SimConfig cfg = make_sim_config(8, ptb);
      cfg.power.ptht_entries = entries;
      ctx.pool().submit(fft, cfg);
    }
    const auto results = ctx.pool().wait_all();
    std::size_t idx = 0;
    for (std::uint32_t entries : sizes) {
      // Cross-machine on purpose: the sweep varies the machine's PTHT
      // capacity and compares each variant against the stock-machine base.
      const Normalized n = normalize(ctx.cache().get(fft, 8), results[idx++],
                                     CrossMachine::kAllow);
      const auto row = t.add_row();
      t.set(row, 0, static_cast<std::int64_t>(entries));
      t.set(row, 1, n.aopb_pct, 2);
      t.set(row, 2, n.energy_pct, 2);
    }
    ctx.show(t, "Ablation 4: PTHT capacity (paper: 8K entries)");
  }
  return ctx.finish();
}

// Ablations of PTB's design constants (DESIGN.md "design choices"):
//   1. token-wire width (2/4/8 bits; paper uses 4 wires each way),
//   2. balancer round-trip latency (3/5/10 cycles per the paper's Xilinx
//      estimates, plus the pessimistic 10-cycle and a 20-cycle stress),
//   3. k-means group count (paper: 8 groups -> <1% accounting error),
//   4. PTHT size.
#include "bench_util.hpp"

#include "common/table.hpp"
#include "power/power_model.hpp"

using namespace ptb;

namespace {

double aopb_pct_for(const SimConfig& cfg, const WorkloadProfile& p,
                    const RunResult& base) {
  const RunResult r = run_one(p, cfg);
  return base.aopb > 0 ? 100.0 * r.aopb / base.aopb : 0.0;
}

}  // namespace

int main() {
  bench::print_header("Ablations", "PTB design-constant sensitivity");
  const auto& fft = benchmark_by_name("fft");
  const auto& unstructured = benchmark_by_name("unstructured");
  const auto& ocean = benchmark_by_name("ocean");

  TechniqueSpec ptb{"PTB", TechniqueKind::kTwoLevel, true, PtbPolicy::kToAll,
                    0.0};
  TechniqueSpec none{"none", TechniqueKind::kNone, false, PtbPolicy::kToAll,
                     0.0};
  BaseRunCache cache;

  {
    Table t({"wire bits", "fft AoPB %", "ocean AoPB %", "unstr AoPB %"});
    for (std::uint32_t bits : {2u, 4u, 8u}) {
      SimConfig cfg = make_sim_config(8, ptb);
      cfg.ptb.token_wire_bits = bits;
      const auto row = t.add_row();
      t.set(row, 0, static_cast<std::int64_t>(bits));
      t.set(row, 1, aopb_pct_for(cfg, fft, cache.get(fft, 8)), 2);
      t.set(row, 2, aopb_pct_for(cfg, ocean, cache.get(ocean, 8)), 2);
      t.set(row, 3,
            aopb_pct_for(cfg, unstructured, cache.get(unstructured, 8)), 2);
    }
    t.print("Ablation 1: token-wire width (8 cores; paper uses 4 bits)");
  }
  {
    Table t({"wire latency", "fft AoPB %", "ocean AoPB %", "unstr AoPB %"});
    for (std::uint32_t lat : {3u, 5u, 10u, 20u}) {
      SimConfig cfg = make_sim_config(8, ptb);
      cfg.ptb.wire_latency_override = lat;
      const auto row = t.add_row();
      t.set(row, 0, static_cast<std::int64_t>(lat));
      t.set(row, 1, aopb_pct_for(cfg, fft, cache.get(fft, 8)), 2);
      t.set(row, 2, aopb_pct_for(cfg, ocean, cache.get(ocean, 8)), 2);
      t.set(row, 3,
            aopb_pct_for(cfg, unstructured, cache.get(unstructured, 8)), 2);
    }
    t.print("Ablation 2: balancer round-trip latency (cycles)");
  }
  {
    Table t({"k-means groups", "aggregate error %", "per-instr |error| %"});
    for (std::uint32_t k : {2u, 4u, 8u, 16u, 32u}) {
      PowerConfig pcfg;
      pcfg.kmeans_groups = k;
      BaseEnergyModel m(pcfg, 1);
      const auto row = t.add_row();
      t.set(row, 0, static_cast<std::int64_t>(k));
      t.set(row, 1, 100.0 * m.grouping_error(), 4);
      t.set(row, 2, 100.0 * m.grouping_abs_error(), 3);
    }
    t.print("Ablation 3: instruction grouping (paper: 8 groups, <1% error)");
  }
  {
    Table t({"PTHT entries", "fft AoPB %", "fft energy %"});
    for (std::uint32_t entries : {512u, 2048u, 8192u}) {
      SimConfig cfg = make_sim_config(8, ptb);
      cfg.power.ptht_entries = entries;
      const RunResult& base = cache.get(fft, 8);
      const RunResult r = run_one(fft, cfg);
      const Normalized n = normalize(base, r);
      const auto row = t.add_row();
      t.set(row, 0, static_cast<std::int64_t>(entries));
      t.set(row, 1, n.aopb_pct, 2);
      t.set(row, 2, n.energy_pct, 2);
    }
    t.print("Ablation 4: PTHT capacity (paper: 8K entries)");
  }
  return 0;
}

// Figure 12: per-benchmark normalized energy and AoPB for a 16-core CMP
// using the DYNAMIC policy selector (lock-spinning -> ToOne, barrier
// spinning -> ToAll; Section IV.B of the paper).
#include "bench_util.hpp"

using namespace ptb;

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_fig12_dynamic", "Figure 12",
                          "16-core detail, dynamic ToOne/ToAll selector");
  FigureGrid grid =
      run_suite_grid(16, standard_techniques(PtbPolicy::kDynamic), ctx.cache(),
                     ctx.pool());
  grid.append_average();
  ctx.show_energy_aopb(grid, "Figure 12 (16 cores, dynamic policy)");
  return ctx.finish();
}

// Figure 12: per-benchmark normalized energy and AoPB for a 16-core CMP
// using the DYNAMIC policy selector (lock-spinning -> ToOne, barrier
// spinning -> ToAll; Section IV.B of the paper).
#include "bench_util.hpp"

using namespace ptb;

int main() {
  bench::print_header("Figure 12",
                      "16-core detail, dynamic ToOne/ToAll selector");
  BaseRunCache cache;
  FigureGrid grid =
      bench::run_suite_grid(16, standard_techniques(PtbPolicy::kDynamic),
                            cache);
  grid.append_average();
  print_energy_aopb(grid, "Figure 12 (16 cores, dynamic policy)");
  return 0;
}

// Substrate ablations: how much do the memory-system modelling choices
// matter to the paper's results?
//   1. MOESI (Table 1) vs MESI coherence,
//   2. flat 300-cycle DRAM (Table 1) vs the banked row-buffer model,
//   3. functional warmup on/off (cold-start sensitivity).
#include "bench_util.hpp"

#include "common/table.hpp"

using namespace ptb;

int main() {
  bench::print_header("Substrate ablations",
                      "coherence protocol, DRAM model, warmup (8 cores)");

  TechniqueSpec none{"none", TechniqueKind::kNone, false, PtbPolicy::kToAll,
                     0.0};
  TechniqueSpec ptb{"PTB", TechniqueKind::kTwoLevel, true, PtbPolicy::kToAll,
                    0.0};

  {
    Table t({"benchmark", "variant", "base cycles", "fwd/1k-ops", "wb/1k-ops",
             "PTB AoPB %"});
    for (const char* bn : {"fft", "radix", "waternsq"}) {
      const auto& profile = benchmark_by_name(bn);
      for (auto proto : {CoherenceProtocol::kMoesi, CoherenceProtocol::kMesi}) {
        SimConfig base_cfg = make_sim_config(8, none);
        SimConfig ptb_cfg = make_sim_config(8, ptb);
        base_cfg.l2.protocol = proto;
        ptb_cfg.l2.protocol = proto;
        CmpSimulator sim(base_cfg, profile);
        const RunResult base = sim.run();
        const auto& dir = sim.memory().directory();
        const double kops = static_cast<double>(base.total_committed) / 1000;
        const RunResult r = run_one(profile, ptb_cfg);
        const auto row = t.add_row();
        t.set(row, 0, profile.name);
        t.set(row, 1, proto == CoherenceProtocol::kMoesi ? "MOESI" : "MESI");
        t.set(row, 2, static_cast<std::int64_t>(base.cycles));
        t.set(row, 3, static_cast<double>(dir.owner_forwards) / kops, 2);
        t.set(row, 4, static_cast<double>(dir.writebacks) / kops, 2);
        t.set(row, 5, base.aopb > 0 ? 100.0 * r.aopb / base.aopb : 0.0, 2);
      }
    }
    t.print("Ablation A: coherence protocol (PTB results are robust)");
  }
  {
    Table t({"benchmark", "DRAM model", "base cycles", "row hit %",
             "PTB AoPB %"});
    for (const char* bn : {"fft", "radix"}) {
      const auto& profile = benchmark_by_name(bn);
      for (bool banked : {false, true}) {
        SimConfig base_cfg = make_sim_config(8, none);
        SimConfig ptb_cfg = make_sim_config(8, ptb);
        base_cfg.mem.banked = banked;
        base_cfg.functional_warmup = false;  // cold misses exercise DRAM
        ptb_cfg.mem.banked = banked;
        CmpSimulator sim(base_cfg, profile);
        const RunResult base = sim.run();
        const auto& dram = sim.memory().directory().dram();
        const double hits =
            dram.accesses ? 100.0 * static_cast<double>(dram.row_hits) /
                                static_cast<double>(dram.accesses)
                          : 0.0;
        const RunResult r = run_one(profile, ptb_cfg);
        const auto row = t.add_row();
        t.set(row, 0, profile.name);
        t.set(row, 1, banked ? "banked row-buffer" : "flat 300 (Table 1)");
        t.set(row, 2, static_cast<std::int64_t>(base.cycles));
        t.set(row, 3, hits, 1);
        t.set(row, 4, base.aopb > 0 ? 100.0 * r.aopb / base.aopb : 0.0, 2);
      }
    }
    t.print("Ablation B: DRAM model (cold caches)");
  }
  {
    Table t({"benchmark", "warmup", "base cycles", "energy (M tokens)"});
    for (const char* bn : {"fft", "blackscholes"}) {
      const auto& profile = benchmark_by_name(bn);
      for (bool warm : {true, false}) {
        SimConfig cfg = make_sim_config(8, none);
        cfg.functional_warmup = warm;
        const RunResult r = run_one(profile, cfg);
        const auto row = t.add_row();
        t.set(row, 0, profile.name);
        t.set(row, 1, warm ? "functional" : "cold");
        t.set(row, 2, static_cast<std::int64_t>(r.cycles));
        t.set(row, 3, r.energy / 1e6, 2);
      }
    }
    t.print("Ablation C: functional warmup vs cold start");
  }
  return 0;
}

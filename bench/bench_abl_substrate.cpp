// Substrate ablations: how much do the memory-system modelling choices
// matter to the paper's results?
//   1. MOESI (Table 1) vs MESI coherence,
//   2. flat 300-cycle DRAM (Table 1) vs the banked row-buffer model,
//   3. functional warmup on/off (cold-start sensitivity).
#include "bench_util.hpp"

#include "common/table.hpp"

using namespace ptb;

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_abl_substrate",
                          "Substrate ablations",
                          "coherence protocol, DRAM model, warmup (8 cores)");

  const TechniqueSpec none = base_technique();
  const TechniqueSpec ptb{"PTB", TechniqueKind::kTwoLevel, true,
                          PtbPolicy::kToAll, 0.0};

  {
    // Base runs need post-run introspection of the directory, so the task
    // builds the simulator itself and stashes the counters in its own slot
    // (one writer per slot: no synchronization needed).
    struct DirStats {
      std::uint64_t owner_forwards = 0;
      std::uint64_t writebacks = 0;
    };
    const char* benchmarks[] = {"fft", "radix", "waternsq"};
    const CoherenceProtocol protos[] = {CoherenceProtocol::kMoesi,
                                        CoherenceProtocol::kMesi};
    std::vector<DirStats> stats(3 * 2);
    std::size_t slot = 0;
    for (const char* bn : benchmarks) {
      const auto& profile = benchmark_by_name(bn);
      for (auto proto : protos) {
        SimConfig base_cfg = make_sim_config(8, none);
        SimConfig ptb_cfg = make_sim_config(8, ptb);
        base_cfg.l2.protocol = proto;
        ptb_cfg.l2.protocol = proto;
        DirStats* out = &stats[slot++];
        ctx.pool().submit([&profile, base_cfg, out] {
          CmpSimulator sim(base_cfg, profile);
          RunResult base = sim.run();
          out->owner_forwards = sim.memory().directory().owner_forwards;
          out->writebacks = sim.memory().directory().writebacks;
          return base;
        });
        ctx.pool().submit(profile, ptb_cfg);
      }
    }
    const auto results = ctx.pool().wait_all();

    Table t({"benchmark", "variant", "base cycles", "fwd/1k-ops", "wb/1k-ops",
             "PTB AoPB %"});
    std::size_t idx = 0;
    slot = 0;
    for (const char* bn : benchmarks) {
      const auto& profile = benchmark_by_name(bn);
      for (auto proto : protos) {
        const RunResult& base = results[idx++];
        const RunResult& r = results[idx++];
        const DirStats& dir = stats[slot++];
        const double kops = static_cast<double>(base.total_committed) / 1000;
        const auto row = t.add_row();
        t.set(row, 0, profile.name);
        t.set(row, 1, proto == CoherenceProtocol::kMoesi ? "MOESI" : "MESI");
        t.set(row, 2, static_cast<std::int64_t>(base.cycles));
        t.set(row, 3, static_cast<double>(dir.owner_forwards) / kops, 2);
        t.set(row, 4, static_cast<double>(dir.writebacks) / kops, 2);
        t.set(row, 5, base.aopb > 0 ? 100.0 * r.aopb / base.aopb : 0.0, 2);
      }
    }
    ctx.show(t, "Ablation A: coherence protocol (PTB results are robust)");
  }
  {
    struct DramStats {
      std::uint64_t accesses = 0;
      std::uint64_t row_hits = 0;
    };
    const char* benchmarks[] = {"fft", "radix"};
    const bool banked_opts[] = {false, true};
    std::vector<DramStats> stats(2 * 2);
    std::size_t slot = 0;
    for (const char* bn : benchmarks) {
      const auto& profile = benchmark_by_name(bn);
      for (bool banked : banked_opts) {
        SimConfig base_cfg = make_sim_config(8, none);
        SimConfig ptb_cfg = make_sim_config(8, ptb);
        base_cfg.mem.banked = banked;
        base_cfg.functional_warmup = false;  // cold misses exercise DRAM
        ptb_cfg.mem.banked = banked;
        DramStats* out = &stats[slot++];
        ctx.pool().submit([&profile, base_cfg, out] {
          CmpSimulator sim(base_cfg, profile);
          RunResult base = sim.run();
          const auto& dram = sim.memory().directory().dram();
          out->accesses = dram.accesses;
          out->row_hits = dram.row_hits;
          return base;
        });
        ctx.pool().submit(profile, ptb_cfg);
      }
    }
    const auto results = ctx.pool().wait_all();

    Table t({"benchmark", "DRAM model", "base cycles", "row hit %",
             "PTB AoPB %"});
    std::size_t idx = 0;
    slot = 0;
    for (const char* bn : benchmarks) {
      const auto& profile = benchmark_by_name(bn);
      for (bool banked : banked_opts) {
        const RunResult& base = results[idx++];
        const RunResult& r = results[idx++];
        const DramStats& dram = stats[slot++];
        const double hits =
            dram.accesses ? 100.0 * static_cast<double>(dram.row_hits) /
                                static_cast<double>(dram.accesses)
                          : 0.0;
        const auto row = t.add_row();
        t.set(row, 0, profile.name);
        t.set(row, 1, banked ? "banked row-buffer" : "flat 300 (Table 1)");
        t.set(row, 2, static_cast<std::int64_t>(base.cycles));
        t.set(row, 3, hits, 1);
        t.set(row, 4, base.aopb > 0 ? 100.0 * r.aopb / base.aopb : 0.0, 2);
      }
    }
    ctx.show(t, "Ablation B: DRAM model (cold caches)");
  }
  {
    const char* benchmarks[] = {"fft", "blackscholes"};
    const bool warm_opts[] = {true, false};
    for (const char* bn : benchmarks) {
      const auto& profile = benchmark_by_name(bn);
      for (bool warm : warm_opts) {
        SimConfig cfg = make_sim_config(8, none);
        cfg.functional_warmup = warm;
        ctx.pool().submit(profile, cfg);
      }
    }
    const auto results = ctx.pool().wait_all();

    Table t({"benchmark", "warmup", "base cycles", "energy (M tokens)"});
    std::size_t idx = 0;
    for (const char* bn : benchmarks) {
      const auto& profile = benchmark_by_name(bn);
      for (bool warm : warm_opts) {
        const RunResult& r = results[idx++];
        const auto row = t.add_row();
        t.set(row, 0, profile.name);
        t.set(row, 1, warm ? "functional" : "cold");
        t.set(row, 2, static_cast<std::int64_t>(r.cycles));
        t.set(row, 3, r.energy / 1e6, 2);
      }
    }
    ctx.show(t, "Ablation C: functional warmup vs cold start");
  }
  return ctx.finish();
}

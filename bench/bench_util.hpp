// Shared helpers for the per-figure bench binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/reporting.hpp"
#include "workloads/suite.hpp"

namespace ptb::bench {

/// Runs every suite benchmark under each technique at `cores`, normalized
/// against cached base runs. Returns the grid without the average row.
inline FigureGrid run_suite_grid(std::uint32_t cores,
                                 const std::vector<TechniqueSpec>& techs,
                                 BaseRunCache& cache) {
  FigureGrid grid;
  for (const auto& t : techs) grid.technique_labels.push_back(t.label);
  for (const auto& profile : benchmark_suite()) {
    const RunResult& base = cache.get(profile, cores);
    std::vector<Normalized> row;
    row.reserve(techs.size());
    for (const auto& t : techs) {
      const RunResult r = run_one(profile, make_sim_config(cores, t));
      row.push_back(normalize(base, r));
    }
    grid.row_labels.push_back(profile.name);
    grid.grid.push_back(std::move(row));
  }
  return grid;
}

/// Average one technique column over the suite at `cores` (no per-benchmark
/// rows — for the scaling figures).
inline std::vector<Normalized> run_suite_averages(
    std::uint32_t cores, const std::vector<TechniqueSpec>& techs,
    BaseRunCache& cache) {
  FigureGrid g = run_suite_grid(cores, techs, cache);
  g.append_average();
  return g.grid.back();
}

inline void print_header(const char* figure, const char* what) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("(normalized to the no-power-control base case; budget = 50%%"
              " of peak)\n");
  std::printf("==========================================================\n\n");
}

}  // namespace ptb::bench

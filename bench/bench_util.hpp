// Shared helpers for the per-figure bench binaries: common CLI parsing
// (--jobs / --json), the run pool, and the JSON report every binary can
// emit next to its printed tables.
//
// Threading & determinism: the BenchContext owns one RunPool sized by
// --jobs; grid helpers (sim/experiment.hpp) and hand-rolled bench loops
// submit their independent runs to it and read the results back in
// submission order, so every table and every JSON byte is identical at any
// --jobs value (only the wall clock changes). --sim-threads adds the second
// parallelism plane: host threads *inside* each simulation (cores sharded
// per cycle, sim/shard_pool.hpp), equally byte-identical at any value; see
// DESIGN.md "Threading model & determinism contract".
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/checkpoint.hpp"
#include "sim/experiment.hpp"
#include "sim/reporting.hpp"
#include "sim/run_pool.hpp"
#include "stats/dump.hpp"
#include "trace/trace.hpp"
#include "workloads/suite.hpp"

namespace ptb::bench {

/// Options every bench binary accepts.
struct BenchOptions {
  unsigned jobs = 0;      // --jobs N; 0 = RunPool::default_jobs()
  unsigned sim_threads = 1;  // --sim-threads N; shards within each run
  std::string json_path;  // --json PATH; empty = no JSON output
  AuditLevel audit = AuditLevel::kOff;  // --audit {off,cheap,full}
  std::string only;       // --only NAME; empty = whole suite
  // --trace PATH[:categories]: capture one event-traced reference run
  // (PTB+2Level under the dynamic selector, 16 cores, the suite's first
  // benchmark) and write the binary trace to PATH for ptb-trace.
  std::string trace_path;
  std::uint32_t trace_categories = kTraceAll;
  // --stats PATH[:EVERY]: capture one stats-instrumented reference run
  // (same configuration as --trace) and write the registry dump to PATH
  // for ptb-stats; EVERY > 0 adds time-series sampling every that many
  // cycles. --stats-format picks the exposition.
  std::string stats_path;
  std::uint64_t stats_every = 0;
  bool stats_prom = false;  // --stats-format json (default) | prom
  // --sample-windows DETAIL/PERIOD: SMARTS-style sampled simulation for
  // every run — each period of PERIOD cycles models the first DETAIL
  // cycles in detail and fast-forwards the rest. 0/0 (default) = off.
  std::uint64_t sample_detail = 0;
  std::uint64_t sample_period = 0;
  // --warm-checkpoint-dir DIR: cache post-warmup simulator images on disk
  // so repeated sweeps skip functional warmup.
  std::string warm_checkpoint_dir;
  // --checkpoint-at CYC:PATH: capture a checkpoint of the reference run
  // (the --trace/--stats configuration) at cycle CYC and write it to PATH.
  std::uint64_t checkpoint_at = 0;
  std::string checkpoint_path;
  // --restore-from PATH: restore the reference run from a checkpoint frame
  // and run it to completion (proves frames round-trip from the CLI).
  std::string restore_path;
};

/// Parses the shared flags; prints usage and exits on --help or on an
/// unknown/malformed argument. Call once, from main.
inline BenchOptions parse_bench_args(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jobs" || arg == "-j") {
      const long n = std::strtol(value("--jobs"), nullptr, 10);
      if (n < 1) {
        std::fprintf(stderr, "%s: --jobs must be >= 1\n", argv[0]);
        std::exit(2);
      }
      opts.jobs = static_cast<unsigned>(n);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      const long n = std::strtol(arg.c_str() + 7, nullptr, 10);
      if (n < 1) {
        std::fprintf(stderr, "%s: --jobs must be >= 1\n", argv[0]);
        std::exit(2);
      }
      opts.jobs = static_cast<unsigned>(n);
    } else if (arg == "--sim-threads" ||
               arg.rfind("--sim-threads=", 0) == 0) {
      const char* v =
          arg.size() > 13 && arg[13] == '=' ? arg.c_str() + 14
                                            : value("--sim-threads");
      const long n = std::strtol(v, nullptr, 10);
      if (n < 1) {
        std::fprintf(stderr, "%s: --sim-threads must be >= 1\n", argv[0]);
        std::exit(2);
      }
      opts.sim_threads = static_cast<unsigned>(n);
    } else if (arg == "--json") {
      opts.json_path = value("--json");
    } else if (arg.rfind("--json=", 0) == 0) {
      opts.json_path = arg.substr(7);
    } else if (arg == "--audit" || arg.rfind("--audit=", 0) == 0) {
      const char* v =
          arg[7] == '=' ? arg.c_str() + 8 : value("--audit");
      if (!parse_audit_level(v, opts.audit)) {
        std::fprintf(stderr, "%s: --audit must be off, cheap or full\n",
                     argv[0]);
        std::exit(2);
      }
    } else if (arg == "--only") {
      opts.only = value("--only");
    } else if (arg.rfind("--only=", 0) == 0) {
      opts.only = arg.substr(7);
    } else if (arg == "--list") {
      for (const std::string& n : full_benchmark_names())
        std::printf("%s\n", n.c_str());
      std::exit(0);
    } else if (arg == "--trace" || arg.rfind("--trace=", 0) == 0) {
      // PATH[:categories] — the suffix after the last ':' is a category
      // list only if it parses as one; otherwise it is part of the path.
      std::string v = arg[7] == '=' ? arg.substr(8) : value("--trace");
      const std::size_t colon = v.rfind(':');
      if (colon != std::string::npos &&
          parse_trace_categories(v.substr(colon + 1),
                                 opts.trace_categories)) {
        v.resize(colon);
      }
      if (v.empty()) {
        std::fprintf(stderr, "%s: --trace requires a file path\n", argv[0]);
        std::exit(2);
      }
      opts.trace_path = v;
    } else if (arg == "--stats" || arg.rfind("--stats=", 0) == 0) {
      // PATH[:EVERY] — the suffix after the last ':' is a sampling period
      // only if it parses as a positive integer; otherwise it is part of
      // the path.
      std::string v = arg[7] == '=' ? arg.substr(8) : value("--stats");
      const std::size_t colon = v.rfind(':');
      if (colon != std::string::npos && colon + 1 < v.size()) {
        char* end = nullptr;
        const unsigned long long every =
            std::strtoull(v.c_str() + colon + 1, &end, 10);
        if (end != v.c_str() + colon + 1 && *end == '\0' && every > 0) {
          opts.stats_every = every;
          v.resize(colon);
        }
      }
      if (v.empty()) {
        std::fprintf(stderr, "%s: --stats requires a file path\n", argv[0]);
        std::exit(2);
      }
      opts.stats_path = v;
    } else if (arg == "--sample-windows" ||
               arg.rfind("--sample-windows=", 0) == 0) {
      const char* v = arg.size() > 16 && arg[16] == '='
                          ? arg.c_str() + 17
                          : value("--sample-windows");
      char* end = nullptr;
      const unsigned long long detail = std::strtoull(v, &end, 10);
      bool ok = end != v && *end == '/';
      if (ok) {
        const char* p = end + 1;
        const unsigned long long period = std::strtoull(p, &end, 10);
        ok = end != p && *end == '\0' && detail > 0 && detail < period;
        if (ok) {
          opts.sample_detail = detail;
          opts.sample_period = period;
        }
      }
      if (!ok) {
        std::fprintf(stderr,
                     "%s: --sample-windows expects DETAIL/PERIOD with "
                     "0 < DETAIL < PERIOD\n",
                     argv[0]);
        std::exit(2);
      }
    } else if (arg == "--warm-checkpoint-dir" ||
               arg.rfind("--warm-checkpoint-dir=", 0) == 0) {
      opts.warm_checkpoint_dir = arg.size() > 21 && arg[21] == '='
                                     ? arg.substr(22)
                                     : value("--warm-checkpoint-dir");
      if (opts.warm_checkpoint_dir.empty()) {
        std::fprintf(stderr,
                     "%s: --warm-checkpoint-dir requires a directory\n",
                     argv[0]);
        std::exit(2);
      }
    } else if (arg == "--checkpoint-at" ||
               arg.rfind("--checkpoint-at=", 0) == 0) {
      // CYC:PATH — the cycle is numeric, so the first ':' ends it and the
      // rest (which may itself contain ':') is the output path.
      const std::string v = arg.size() > 15 && arg[15] == '='
                                ? arg.substr(16)
                                : std::string(value("--checkpoint-at"));
      char* end = nullptr;
      const unsigned long long cyc = std::strtoull(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != ':' || end[1] == '\0') {
        std::fprintf(stderr, "%s: --checkpoint-at expects CYC:PATH\n",
                     argv[0]);
        std::exit(2);
      }
      opts.checkpoint_at = cyc;
      opts.checkpoint_path = end + 1;
    } else if (arg == "--restore-from" ||
               arg.rfind("--restore-from=", 0) == 0) {
      opts.restore_path = arg.size() > 14 && arg[14] == '='
                              ? arg.substr(15)
                              : std::string(value("--restore-from"));
      if (opts.restore_path.empty()) {
        std::fprintf(stderr, "%s: --restore-from requires a file path\n",
                     argv[0]);
        std::exit(2);
      }
    } else if (arg == "--stats-format" ||
               arg.rfind("--stats-format=", 0) == 0) {
      const std::string v =
          arg.size() > 14 && arg[14] == '='
              ? arg.substr(15)
              : std::string(value("--stats-format"));
      if (v == "json") {
        opts.stats_prom = false;
      } else if (v == "prom") {
        opts.stats_prom = true;
      } else {
        std::fprintf(stderr, "%s: --stats-format must be json or prom\n",
                     argv[0]);
        std::exit(2);
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--jobs N] [--sim-threads N] [--json PATH]\n"
          "          [--audit LEVEL] [--only NAME | --list]\n"
          "          [--trace PATH[:CATS]] [--stats PATH[:EVERY]]\n"
          "          [--stats-format json|prom]\n"
          "          [--sample-windows DETAIL/PERIOD]\n"
          "          [--warm-checkpoint-dir DIR]\n"
          "          [--checkpoint-at CYC:PATH] [--restore-from PATH]\n"
          "  --jobs N      worker threads for the run grid (default: all\n"
          "                hardware threads); results are identical for any N\n"
          "  --sim-threads N\n"
          "                host threads inside each simulation: modeled cores\n"
          "                are sharded across N workers that advance in\n"
          "                lockstep per cycle (default: 1). Results are\n"
          "                bit-identical for any N; combine with --jobs so\n"
          "                jobs * sim-threads stays within the host's\n"
          "                hardware threads\n"
          "  --json PATH   also write the results as machine-readable JSON\n"
          "  --audit LEVEL run the invariant auditor on every simulation:\n"
          "                off (default), cheap (per-core checks each cycle)\n"
          "                or full (adds periodic coherence scans); any\n"
          "                level aborts the run on a violated invariant and\n"
          "                never changes the reported numbers\n"
          "  --only NAME   restrict the benchmark suite to one benchmark\n"
          "  --list        print the suite's benchmark names and exit\n"
          "  --trace PATH[:CATS]\n"
          "                additionally capture one event-traced reference\n"
          "                run (PTB+2Level, dynamic policy, 16 cores, the\n"
          "                suite's first benchmark) and write the binary\n"
          "                trace to PATH (inspect with ptb-trace). CATS is\n"
          "                'all' (default) or a comma list of: token,\n"
          "                policy, dvfs, spin, enforcer, sync, budget\n"
          "  --stats PATH[:EVERY]\n"
          "                additionally capture one stats-instrumented\n"
          "                reference run (same configuration as --trace) and\n"
          "                write the registry dump to PATH (inspect with\n"
          "                ptb-stats). EVERY > 0 also samples every scalar\n"
          "                stat every EVERY cycles into the dump's time\n"
          "                series\n"
          "  --stats-format json|prom\n"
          "                exposition for --stats: JSON (default; the\n"
          "                ptb-stats interchange format) or Prometheus text\n"
          "  --sample-windows DETAIL/PERIOD\n"
          "                sampled simulation for every run: each PERIOD\n"
          "                cycles, model the first DETAIL in full detail and\n"
          "                fast-forward the rest (power control frozen);\n"
          "                energy/AoPB are scaled back up from the detailed\n"
          "                windows. Approximate by design — numbers differ\n"
          "                from a full run, deterministically\n"
          "  --warm-checkpoint-dir DIR\n"
          "                cache post-warmup simulator images in DIR; later\n"
          "                runs of the same machine/seed/benchmark restore\n"
          "                the image instead of replaying functional warmup\n"
          "                (results stay byte-identical)\n"
          "  --checkpoint-at CYC:PATH\n"
          "                capture a checkpoint of the reference run (the\n"
          "                --trace configuration) at cycle CYC, write the\n"
          "                frame to PATH\n"
          "  --restore-from PATH\n"
          "                restore the reference run from a frame written by\n"
          "                --checkpoint-at and run it to completion; the\n"
          "                resumed run is bit-identical to an uninterrupted\n"
          "                one\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s' (try --help)\n",
                   argv[0], arg.c_str());
      std::exit(2);
    }
  }
  return opts;
}

/// Everything one bench main needs: parsed options, the worker pool, the
/// base-run cache, and the JSON report. Construct first thing in main;
/// return finish() last thing.
class BenchContext {
 public:
  /// Parses argv, prints the standard figure header, and spins up the
  /// pool. `name` is the binary's canonical name (the JSON "bench" field).
  BenchContext(int argc, char** argv, const char* name, const char* figure,
               const char* what)
      : opts_(parse_bench_args(argc, argv)),
        pool_(opts_.jobs),
        report_(name) {
    // Applies to every config built through make_sim_config from here on;
    // set before any run is submitted to the pool.
    set_default_audit_level(opts_.audit);
    set_default_sim_threads(opts_.sim_threads);
    set_default_sample_windows(opts_.sample_detail, opts_.sample_period);
    if (!opts_.warm_checkpoint_dir.empty()) {
      set_default_warm_checkpoint_dir(opts_.warm_checkpoint_dir);
    }
    // The suite filter must be installed before anything materializes the
    // suite (the first benchmark_suite() call freezes it).
    if (!set_suite_filter(opts_.only)) {
      std::fprintf(stderr,
                   "error: unknown benchmark '%s' for --only (try --list)\n",
                   opts_.only.c_str());
      std::exit(2);
    }
    std::printf("==========================================================\n");
    std::printf("%s — %s\n", figure, what);
    std::printf("(normalized to the no-power-control base case; budget = 50%%"
                " of peak)\n");
    std::printf("==========================================================\n\n");
  }

  RunPool& pool() { return pool_; }
  BaseRunCache& cache() { return cache_; }
  BenchReport& report() { return report_; }
  const BenchOptions& options() const { return opts_; }

  /// Print a table and record it in the JSON report.
  void show(const Table& t, const std::string& title) {
    t.print(title);
    report_.add_table(title, t);
  }

  /// Print a grid's energy/AoPB pair (the paper's paired-figure layout)
  /// and record the grid in the JSON report.
  void show_energy_aopb(const FigureGrid& grid, const std::string& title) {
    print_energy_aopb(grid, title);
    report_.add_grid(title, grid);
  }

  /// Print a grid's slowdown table (Figure 13 style) and record the grid.
  void show_slowdown(const FigureGrid& grid, const std::string& title) {
    print_slowdown(grid, title);
    report_.add_grid(title, grid);
  }

  /// Writes the JSON report if --json was given and captures the --trace
  /// reference run if requested. Returns main's exit code.
  int finish() {
    int rc = 0;
    if (!opts_.trace_path.empty() && !write_trace()) rc = 1;
    if (!opts_.stats_path.empty() && !write_stats()) rc = 1;
    if (!opts_.checkpoint_path.empty() && !write_checkpoint()) rc = 1;
    if (!opts_.restore_path.empty() && !run_restored()) rc = 1;
    if (!opts_.json_path.empty() && !report_.write(opts_.json_path)) {
      std::fprintf(stderr, "error: cannot write JSON to %s\n",
                   opts_.json_path.c_str());
      rc = 1;
    }
    return rc;
  }

 private:
  /// The reference-run configuration shared by --trace, --stats,
  /// --checkpoint-at and --restore-from: the paper's headline setup,
  /// PTB+2Level under the dynamic policy selector on 16 cores.
  static SimConfig reference_config() {
    TechniqueSpec tech;
    tech.label = "PTB+2Level(dyn)";
    tech.kind = TechniqueKind::kTwoLevel;
    tech.ptb = true;
    tech.policy = PtbPolicy::kDynamic;
    return make_sim_config(16, tech);
  }

  /// The --trace reference run on the first benchmark of the (possibly
  /// --only-filtered) suite. Runs on the calling thread, so the trace
  /// bytes are independent of --jobs.
  bool write_trace() {
    const SimConfig cfg = reference_config();
    RunOptions ropts;
    ropts.trace_categories = opts_.trace_categories;
    const WorkloadProfile& prof = benchmark_suite().front();
    const RunResult r = run_one(prof, cfg, ropts);
    if (!r.trace || !r.trace->save(opts_.trace_path)) {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   opts_.trace_path.c_str());
      return false;
    }
    std::printf(
        "\ntrace: %s on PTB+2Level(dyn)/16 cores -> %s (%llu events, %llu "
        "dropped; categories %s)\n",
        prof.name.c_str(), opts_.trace_path.c_str(),
        static_cast<unsigned long long>(r.trace->total_events()),
        static_cast<unsigned long long>(r.trace->total_dropped()),
        trace_categories_string(r.trace->categories).c_str());
    return true;
  }

  /// The --stats reference run: same configuration as --trace, run on the
  /// calling thread with the stats registry enabled.
  bool write_stats() {
    const SimConfig cfg = reference_config();
    RunOptions ropts;
    ropts.stats = true;
    ropts.stats_sample_every = opts_.stats_every;
    const WorkloadProfile& prof = benchmark_suite().front();
    const RunResult r = run_one(prof, cfg, ropts);
    const std::string text =
        opts_.stats_prom ? stats_prometheus(r) : stats_json(r);
    bool ok = !text.empty();
    if (ok) {
      std::FILE* f = std::fopen(opts_.stats_path.c_str(), "wb");
      ok = f != nullptr &&
           std::fwrite(text.data(), 1, text.size(), f) == text.size();
      if (f != nullptr) ok = std::fclose(f) == 0 && ok;
    }
    if (!ok) {
      std::fprintf(stderr, "error: cannot write stats to %s\n",
                   opts_.stats_path.c_str());
      return false;
    }
    std::printf(
        "\nstats: %s on PTB+2Level(dyn)/16 cores -> %s (%zu stats%s)\n",
        prof.name.c_str(), opts_.stats_path.c_str(),
        r.stats ? r.stats->scalars.size() : 0,
        opts_.stats_every > 0 ? ", sampled" : "");
    return true;
  }

  /// --checkpoint-at CYC:PATH: the reference run again, capturing a full
  /// simulator checkpoint at cycle CYC and writing the frame to PATH.
  bool write_checkpoint() {
    const SimConfig cfg = reference_config();
    const WorkloadProfile& prof = benchmark_suite().front();
    std::string frame;
    RunOptions ropts;
    ropts.checkpoint_at = opts_.checkpoint_at;
    ropts.checkpoint_out = &frame;
    const RunResult r = run_one(prof, cfg, ropts);
    if (frame.empty()) {
      std::fprintf(stderr,
                   "error: run finished at cycle %llu before reaching "
                   "--checkpoint-at cycle %llu\n",
                   static_cast<unsigned long long>(r.cycles),
                   static_cast<unsigned long long>(opts_.checkpoint_at));
      return false;
    }
    std::string err;
    if (!save_checkpoint_file(opts_.checkpoint_path, frame, &err)) {
      std::fprintf(stderr, "error: cannot write checkpoint to %s: %s\n",
                   opts_.checkpoint_path.c_str(), err.c_str());
      return false;
    }
    std::printf(
        "\ncheckpoint: %s on PTB+2Level(dyn)/16 cores at cycle %llu -> %s "
        "(%zu bytes)\n",
        prof.name.c_str(),
        static_cast<unsigned long long>(opts_.checkpoint_at),
        opts_.checkpoint_path.c_str(), frame.size());
    return true;
  }

  /// --restore-from PATH: restore the reference run from a frame and run
  /// it to completion. The resumed run is bit-identical to an
  /// uninterrupted one; a frame from a different machine configuration,
  /// seed, or benchmark is rejected with the validator's diagnostic.
  bool run_restored() {
    const SimConfig cfg = reference_config();
    const WorkloadProfile& prof = benchmark_suite().front();
    std::string frame;
    std::string err;
    if (!load_checkpoint_file(opts_.restore_path, frame, &err)) {
      std::fprintf(stderr, "error: cannot read checkpoint %s: %s\n",
                   opts_.restore_path.c_str(), err.c_str());
      return false;
    }
    CmpSimulator sim(cfg, prof);
    if (!sim.restore_checkpoint(frame, &err)) {
      std::fprintf(stderr, "error: cannot restore from %s: %s\n",
                   opts_.restore_path.c_str(), err.c_str());
      return false;
    }
    const RunResult r = sim.run();
    std::printf(
        "\nrestored: %s on PTB+2Level(dyn)/16 cores from %s -> finished at "
        "cycle %llu (energy %.3f)\n",
        prof.name.c_str(), opts_.restore_path.c_str(),
        static_cast<unsigned long long>(r.cycles), r.energy);
    return true;
  }

  BenchOptions opts_;
  RunPool pool_;
  BaseRunCache cache_;
  BenchReport report_;
};

}  // namespace ptb::bench

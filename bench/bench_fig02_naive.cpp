// Figure 2: normalized energy and AoPB for a 16-core CMP with a 50% power
// budget under the NAIVE equal-split policy (DVFS / DFS / 2Level). This is
// the paper's motivation: per-core techniques that work in a single-core
// setting fail to match the budget for parallel workloads.
#include "bench_util.hpp"

using namespace ptb;

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_fig02_naive", "Figure 2",
                          "naive equal power split, 16-core CMP, 50% budget");
  FigureGrid grid =
      run_suite_grid(16, naive_techniques(), ctx.cache(), ctx.pool());
  grid.append_average();
  ctx.show_energy_aopb(grid, "Figure 2 (16 cores, naive split)");
  return ctx.finish();
}

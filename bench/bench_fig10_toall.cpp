// Figure 10: per-benchmark normalized energy and AoPB for a 16-core CMP
// with the ToAll PTB token-distribution policy.
#include "bench_util.hpp"

using namespace ptb;

int main() {
  bench::print_header("Figure 10", "16-core detail, PTB policy = ToAll");
  BaseRunCache cache;
  FigureGrid grid =
      bench::run_suite_grid(16, standard_techniques(PtbPolicy::kToAll),
                            cache);
  grid.append_average();
  print_energy_aopb(grid, "Figure 10 (16 cores, ToAll)");
  return 0;
}

// Figure 10: per-benchmark normalized energy and AoPB for a 16-core CMP
// with the ToAll PTB token-distribution policy.
#include "bench_util.hpp"

using namespace ptb;

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_fig10_toall", "Figure 10",
                          "16-core detail, PTB policy = ToAll");
  FigureGrid grid = run_suite_grid(16, standard_techniques(PtbPolicy::kToAll),
                                   ctx.cache(), ctx.pool());
  grid.append_average();
  ctx.show_energy_aopb(grid, "Figure 10 (16 cores, ToAll)");
  return ctx.finish();
}

// Table 2 of the paper: the evaluated benchmarks and input working sets,
// plus measured properties of each synthetic instruction stream (so the
// catalog is verifiable, not just declarative).
#include "bench_util.hpp"

#include <algorithm>

#include "common/table.hpp"
#include "sync/spin_tracker.hpp"
#include "workloads/program.hpp"

using namespace ptb;

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_table2_workloads", "Table 2",
                          "evaluated benchmarks and input sets");

  Table table({"benchmark", "input size", "iters", "kops/iter", "locks",
               "cs/1k-ops", "imbalance", "mem %", "branch %"});
  // Short single-thread stream drives, far cheaper than a simulation —
  // runs on the calling thread regardless of --jobs.
  for (const auto& p : benchmark_suite()) {
    // Measure the actual emitted mix over a short single-thread drive.
    SyncState sync(std::max(1u, p.num_locks), 1, 1);
    SpinTracker tracker;
    SyntheticProgram prog(p, 0, 1, sync, tracker, 1);
    std::uint64_t mem = 0, branch = 0, total = 0;
    MicroOp op;
    while (total < 20000) {
      const auto st = prog.next(op);
      if (st == ThreadProgram::FetchStatus::kFinished) break;
      if (st == ThreadProgram::FetchStatus::kStall) {
        // Feed sync values directly (single thread: locks always free,
        // barriers trivially release).
        continue;
      }
      ++total;
      if (op.is_memory()) ++mem;
      if (op.is_branch()) ++branch;
      if (op.blocks_generation) {
        std::uint64_t v = 0;
        switch (op.sync) {
          case SyncRole::kLockTryAcquire:
            v = sync.try_acquire(op.sync_id, 0);
            break;
          case SyncRole::kLockRelease: sync.release(op.sync_id, 0); break;
          case SyncRole::kBarrierArrive: v = sync.arrive(op.sync_id); break;
          case SyncRole::kLockTestLoad: v = sync.read_lock(op.sync_id); break;
          case SyncRole::kBarrierSpinLoad:
            v = sync.read_sense(op.sync_id);
            break;
          case SyncRole::kNone: break;
        }
        prog.on_value(op, v);
      }
    }
    const auto row = table.add_row();
    table.set(row, 0, p.name);
    table.set(row, 1, p.input_desc);
    table.set(row, 2, static_cast<std::int64_t>(p.iterations));
    table.set(row, 3, static_cast<double>(p.ops_per_iteration) / 1000.0, 0);
    table.set(row, 4, static_cast<std::int64_t>(p.num_locks));
    table.set(row, 5, p.cs_per_1k_ops, 1);
    table.set(row, 6, p.imbalance, 2);
    table.set(row, 7, 100.0 * static_cast<double>(mem) /
                          static_cast<double>(total), 1);
    table.set(row, 8, 100.0 * static_cast<double>(branch) /
                          static_cast<double>(total), 1);
  }
  ctx.show(table, "SPLASH-2 + PARSEC workload catalog (measured stream mix)");
  return ctx.finish();
}

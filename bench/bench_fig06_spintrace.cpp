// Figure 6: per-cycle power behaviour of a core entering a spinning state —
// an initial computation peak, then power drops and stabilizes well under
// the budget (the signature PTB's indirect spin detection keys on).
#include "bench_util.hpp"

#include <algorithm>

#include "common/table.hpp"
#include "sim/cmp.hpp"

using namespace ptb;

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_fig06_spintrace", "Figure 6",
                          "per-cycle power of a spinning core");

  // Lock-bound benchmark at 8 cores; core 0 spends long stretches spinning.
  // A single traced run — the simulator needs introspection after run(), so
  // this bench stays on the calling thread regardless of --jobs.
  SimConfig cfg = make_sim_config(8, base_technique());
  const WorkloadProfile& profile = benchmark_by_name("unstructured");
  CmpSimulator sim(cfg, profile);
  RunOptions opts;
  opts.record_core_traces = true;
  const RunResult r = sim.run(opts);

  const double budget = sim.budgets().local_budget();
  const auto& trace = r.core_power_traces[0];
  std::printf("core 0, %zu trace samples over %llu cycles; local budget "
              "= %.1f tokens/cycle\n\n",
              trace.size(), static_cast<unsigned long long>(r.cycles),
              budget);

  // Render an ASCII strip chart of a window containing a busy->spin edge:
  // find the steepest sustained drop in the trace.
  const auto& v = trace.values();
  std::size_t edge = 0;
  double best_drop = 0.0;
  const std::size_t w = 16;
  for (std::size_t i = w; i + w < v.size(); ++i) {
    double before = 0.0, after = 0.0;
    for (std::size_t k = 0; k < w; ++k) {
      before += v[i - k - 1];
      after += v[i + k];
    }
    const double drop = (before - after) / static_cast<double>(w);
    if (drop > best_drop) {
      best_drop = drop;
      edge = i;
    }
  }
  const std::size_t lo = edge > 24 ? edge - 24 : 0;
  const std::size_t hi = std::min(v.size(), edge + 40);
  const double vmax = *std::max_element(v.begin() + lo, v.begin() + hi);
  Table window({"cycle", "tokens"});
  std::printf("%-10s %-9s  power (each # ~ %.1f tokens; | = local budget)\n",
              "cycle", "tokens", vmax / 40.0);
  for (std::size_t i = lo; i < hi; ++i) {
    const int bars = static_cast<int>(40.0 * v[i] / vmax);
    const int budget_col = static_cast<int>(40.0 * budget / vmax);
    std::printf("%-10.0f %8.1f  ", trace.times()[i], v[i]);
    for (int b = 0; b < 41; ++b) {
      if (b == budget_col) {
        std::fputc('|', stdout);
      } else {
        std::fputc(b < bars ? '#' : ' ', stdout);
      }
    }
    std::fputc('\n', stdout);
    const auto row = window.add_row();
    window.set(row, 0, trace.times()[i], 0);
    window.set(row, 1, v[i], 1);
  }
  std::printf("\nAfter the initial peak the spinning core stabilizes far "
              "under its budget\n(the paper's Figure 6 signature) — those "
              "are the tokens PTB redistributes.\n");
  ctx.report().set_meta("local_budget", format_double(budget, 1));
  ctx.report().add_table("Figure 6: busy->spin window (cycle, tokens)",
                         window);
  return ctx.finish();
}

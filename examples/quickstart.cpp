// Quickstart: build a CMP, run a benchmark under a 50% power budget with
// and without Power Token Balancing, and compare budget-matching accuracy.
//
//   $ ./quickstart [benchmark] [cores]
//
// This is the smallest end-to-end use of the library's public API:
//   benchmark_by_name() -> make_sim_config() -> run_one() -> normalize().
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  const std::string bench = argc > 1 ? argv[1] : "fft";
  const std::uint32_t cores =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 8;

  const WorkloadProfile& profile = benchmark_by_name(bench);
  std::printf("Benchmark: %s (%s), %u cores, budget = 50%% of peak\n\n",
              profile.name.c_str(), profile.input_desc.c_str(), cores);

  // 1. The base case: no power control. Every figure normalizes to this.
  TechniqueSpec none{"none", TechniqueKind::kNone, false, PtbPolicy::kToAll,
                     0.0};
  const RunResult base = run_one(profile, make_sim_config(cores, none));

  Table table({"configuration", "cycles", "mean power", "energy %",
               "AoPB %", "slowdown %"});
  auto add = [&](const std::string& label, const RunResult& r) {
    const Normalized n = normalize(base, r);
    const auto row = table.add_row();
    table.set(row, 0, label);
    table.set(row, 1, static_cast<std::int64_t>(r.cycles));
    table.set(row, 2, r.power.mean(), 1);
    table.set(row, 3, n.energy_pct, 2);
    table.set(row, 4, n.aopb_pct, 2);
    table.set(row, 5, n.slowdown_pct, 2);
  };
  add("no control (base)", base);

  // 2. The naive split: per-core 2-level control, equal budget shares.
  TechniqueSpec naive{"2Level", TechniqueKind::kTwoLevel, false,
                      PtbPolicy::kToAll, 0.0};
  add("2Level (naive split)", run_one(profile, make_sim_config(cores, naive)));

  // 3. Power Token Balancing on top of the same local techniques.
  TechniqueSpec ptb{"PTB", TechniqueKind::kTwoLevel, true, PtbPolicy::kToAll,
                    0.0};
  const RunResult with_ptb = run_one(profile, make_sim_config(cores, ptb));
  add("PTB+2Level (ToAll)", with_ptb);

  table.print("Power budget accuracy (lower AoPB % = better)");
  std::printf("PTB moved %.0f tokens between cores (%.0f granted).\n",
              with_ptb.tokens_donated, with_ptb.tokens_granted);
  return 0;
}

// Spin detection two ways: the paper's indirect power-pattern detector
// (Figure 6) versus the BCT hardware of Li et al. [12], both watching the
// same core as it computes, spins on a contended lock, and wakes up.
#include <cstdio>

#include "core/spin_power_detector.hpp"
#include "sim/cmp.hpp"
#include "sim/experiment.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace ptb;

  // A 4-core run of the lock-bound benchmark, recording core 0's power.
  TechniqueSpec none{"none", TechniqueKind::kNone, false, PtbPolicy::kToAll,
                     0.0};
  SimConfig cfg = make_sim_config(4, none);
  const WorkloadProfile& profile = benchmark_by_name("unstructured");
  CmpSimulator sim(cfg, profile);
  RunOptions opts;
  opts.record_core_traces = true;
  const RunResult r = sim.run(opts);

  // Feed the recorded power trace to the power-pattern detector.
  const double local_budget = sim.budgets().local_budget();
  SpinPowerDetector detector(0.75 * local_budget, 32);
  std::uint64_t spin_samples = 0;
  const auto& trace = r.core_power_traces[0];
  for (double p : trace.values()) {
    if (detector.tick(p)) ++spin_samples;
  }

  const auto& t = sim.tracker(0);
  const double true_spin_frac =
      static_cast<double>(t.cycles_in(ExecState::kLockAcq) +
                          t.cycles_in(ExecState::kBarrier)) /
      static_cast<double>(t.total_cycles());

  std::printf("Benchmark %s, core 0 of 4, %llu cycles.\n\n",
              profile.name.c_str(),
              static_cast<unsigned long long>(r.cycles));
  std::printf("Ground truth:       %.1f%% of cycles spent spinning\n",
              100.0 * true_spin_frac);
  std::printf("Power-pattern view: %.1f%% of trace samples flagged, across "
              "%llu spin episodes\n",
              100.0 * static_cast<double>(spin_samples) / trace.size(),
              static_cast<unsigned long long>(detector.detections()));
  std::printf("BCT hardware:       %llu spin detections at commit\n",
              static_cast<unsigned long long>(sim.core(0).bct().detections()));
  std::printf("\nThe power-pattern detector needs no instrumentation — it "
              "watches the same\ntoken stream PTB already aggregates "
              "(Section IV.B of the paper).\n");
  return 0;
}

// Reproduces the paper's Figure 7 walkthrough: four cores with 10-token
// local budgets reach a barrier one by one; each spinner (4 tokens) hands
// its 6 spare tokens to the PTB load-balancer, which re-grants them to the
// cores still computing (budgets 12 -> 16 -> 28).
#include <cstdio>
#include <vector>

#include "core/balancer.hpp"

int main() {
  using namespace ptb;
  PtbConfig cfg;
  cfg.enabled = true;
  cfg.wire_latency_override = 1;  // keep the walkthrough readable
  PtbLoadBalancer balancer(cfg, 4, /*local_budget=*/10.0);

  struct Phase {
    const char* label;
    std::vector<double> power;  // per-core estimated power
  };
  const std::vector<Phase> phases{
      {"(a) core 2 reaches the barrier", {12.0, 4.0, 12.0, 12.0}},
      {"(b) cores 2 and 3 spin", {16.0, 4.0, 4.0, 16.0}},
      {"(c) only core 4 still computes", {28.0, 4.0, 4.0, 4.0}},
  };

  std::printf("PTB barrier example (Figure 7): local budgets = 10 tokens,\n"
              "spinning costs 4 tokens -> each spinner frees 6 tokens.\n\n");
  std::vector<double> eff;
  Cycle now = 0;
  for (const auto& phase : phases) {
    // Two cycles per phase: donate, then the grant lands (1-cycle wires).
    balancer.cycle(now++, phase.power, true, PtbPolicy::kToAll, eff);
    balancer.cycle(now++, phase.power, true, PtbPolicy::kToAll, eff);
    std::printf("%s\n  effective budgets:", phase.label);
    for (double b : eff) std::printf(" %5.1f", b);
    std::printf("\n\n");
  }
  std::printf("Totals: donated %.1f tokens, granted %.1f, evaporated %.1f.\n",
              balancer.tokens_donated, balancer.tokens_granted,
              balancer.tokens_evaporated);
  return 0;
}

// ptbsim — command-line driver over the full library: run any benchmark on
// any configuration and print (or CSV-dump) the metrics. The kind of tool a
// downstream user scripts sweeps with.
//
//   ptbsim [options]
//     --bench NAME        benchmark (default fft; "all" runs the suite)
//     --cores N           number of cores (default 16)
//     --technique T       none | dvfs | dfs | 2level   (default 2level)
//     --ptb               enable Power Token Balancing
//     --policy P          toall | toone | dynamic      (default toall)
//     --relax F           relaxed-accuracy threshold, e.g. 0.2
//     --budget F          budget fraction of peak      (default 0.5)
//     --gate-spinners     duty-cycle-gate detected spinners
//     --seed N            experiment seed
//     --trace DIR         dump per-cycle power trace CSV + summary to DIR
//     --csv               CSV output instead of a table
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/cmp.hpp"
#include "sim/experiment.hpp"
#include "sim/trace_export.hpp"
#include "workloads/suite.hpp"

using namespace ptb;

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "ptbsim: %s\n(see the header of examples/ptbsim.cpp "
                       "for options)\n", msg);
  std::exit(2);
}

TechniqueKind parse_technique(const std::string& t) {
  if (t == "none") return TechniqueKind::kNone;
  if (t == "dvfs") return TechniqueKind::kDvfs;
  if (t == "dfs") return TechniqueKind::kDfs;
  if (t == "2level") return TechniqueKind::kTwoLevel;
  usage("unknown --technique");
}

PtbPolicy parse_policy(const std::string& p) {
  if (p == "toall") return PtbPolicy::kToAll;
  if (p == "toone") return PtbPolicy::kToOne;
  if (p == "dynamic") return PtbPolicy::kDynamic;
  usage("unknown --policy");
}

}  // namespace

int main(int argc, char** argv) {
  std::string bench = "fft";
  std::uint32_t cores = 16;
  TechniqueSpec tech{"cli", TechniqueKind::kTwoLevel, false,
                     PtbPolicy::kToAll, 0.0};
  double budget = 0.5;
  std::uint64_t seed = 1;
  bool csv = false;
  bool gate = false;
  std::string trace_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) usage(what);
      return argv[++i];
    };
    if (a == "--bench") bench = need("--bench needs a name");
    else if (a == "--cores") cores = std::atoi(need("--cores needs N"));
    else if (a == "--technique")
      tech.kind = parse_technique(need("--technique needs a value"));
    else if (a == "--ptb") tech.ptb = true;
    else if (a == "--policy")
      tech.policy = parse_policy(need("--policy needs a value"));
    else if (a == "--relax") tech.relax = std::atof(need("--relax needs F"));
    else if (a == "--budget") budget = std::atof(need("--budget needs F"));
    else if (a == "--seed") seed = std::strtoull(need("--seed needs N"),
                                                 nullptr, 10);
    else if (a == "--csv") csv = true;
    else if (a == "--trace") trace_dir = need("--trace needs a directory");
    else if (a == "--gate-spinners") gate = true;
    else usage(("unknown option: " + a).c_str());
  }
  if (cores < 1 || cores > 32) usage("--cores must be 1..32");

  std::vector<std::string> benches;
  if (bench == "all") {
    benches = benchmark_names();
  } else {
    benches.push_back(bench);
  }

  Table table({"benchmark", "cycles", "mean power", "budget", "energy %",
               "AoPB %", "slowdown %"});
  BaseRunCache cache;
  for (const auto& name : benches) {
    const WorkloadProfile& profile = benchmark_by_name(name);
    SimConfig cfg = make_sim_config(cores, tech, seed);
    cfg.budget_fraction = budget;
    cfg.ptb.gate_spinners = gate;
    SimConfig base_cfg = make_sim_config(
        cores, TechniqueSpec{"none", TechniqueKind::kNone, false,
                             PtbPolicy::kToAll, 0.0},
        seed);
    base_cfg.budget_fraction = budget;
    const RunResult base = run_one(profile, base_cfg);
    RunOptions opts;
    opts.record_cmp_trace = !trace_dir.empty();
    opts.record_core_traces = !trace_dir.empty();
    CmpSimulator sim(cfg, profile);
    const RunResult r = sim.run(opts);
    if (!trace_dir.empty() && !export_run(r, trace_dir)) {
      std::fprintf(stderr, "ptbsim: cannot write traces to %s\n",
                   trace_dir.c_str());
      return 1;
    }
    const Normalized norm = normalize(base, r);
    const auto row = table.add_row();
    table.set(row, 0, name);
    table.set(row, 1, static_cast<std::int64_t>(r.cycles));
    table.set(row, 2, r.power.mean(), 1);
    table.set(row, 3, r.budget, 1);
    table.set(row, 4, norm.energy_pct, 2);
    table.set(row, 5, norm.aopb_pct, 2);
    table.set(row, 6, norm.slowdown_pct, 2);
  }
  if (csv) {
    std::fputs(table.to_csv().c_str(), stdout);
  } else {
    table.print("ptbsim results (vs no-control base case)");
  }
  return 0;
}

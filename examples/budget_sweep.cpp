// Sweeps the global power budget from 30% to 90% of peak on one benchmark
// and reports how each technique's energy / accuracy / performance responds
// — the kind of design-space exploration the library is meant for.
//
//   $ ./budget_sweep [benchmark] [cores]
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace ptb;
  const std::string bench = argc > 1 ? argv[1] : "ocean";
  const std::uint32_t cores =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 8;
  const WorkloadProfile& profile = benchmark_by_name(bench);

  TechniqueSpec none{"none", TechniqueKind::kNone, false, PtbPolicy::kToAll,
                     0.0};
  TechniqueSpec ptb{"PTB", TechniqueKind::kTwoLevel, true, PtbPolicy::kToAll,
                    0.0};
  TechniqueSpec dvfs{"DVFS", TechniqueKind::kDvfs, false, PtbPolicy::kToAll,
                     0.0};

  Table table({"budget %", "DVFS AoPB %", "PTB AoPB %", "DVFS energy %",
               "PTB energy %", "PTB slowdown %"});
  for (double frac : {0.3, 0.4, 0.5, 0.6, 0.7, 0.9}) {
    SimConfig base_cfg = make_sim_config(cores, none);
    base_cfg.budget_fraction = frac;
    const RunResult base = run_one(profile, base_cfg);

    SimConfig dvfs_cfg = make_sim_config(cores, dvfs);
    dvfs_cfg.budget_fraction = frac;
    const RunResult rd = run_one(profile, dvfs_cfg);

    SimConfig ptb_cfg = make_sim_config(cores, ptb);
    ptb_cfg.budget_fraction = frac;
    const RunResult rp = run_one(profile, ptb_cfg);

    const Normalized nd = normalize(base, rd);
    const Normalized np = normalize(base, rp);
    const auto row = table.add_row();
    table.set(row, 0, frac * 100.0, 0);
    table.set(row, 1, nd.aopb_pct, 1);
    table.set(row, 2, np.aopb_pct, 1);
    table.set(row, 3, nd.energy_pct, 2);
    table.set(row, 4, np.energy_pct, 2);
    table.set(row, 5, np.slowdown_pct, 2);
  }
  std::printf("Benchmark %s on %u cores.\n\n", profile.name.c_str(), cores);
  table.print("Budget sweep: accuracy and cost vs budget tightness");
  return 0;
}

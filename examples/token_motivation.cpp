// The paper's Figure 5 motivation: four cores under a 40 W global budget
// (10 W local shares). Without balancing, cores 3 and 4 throttle in cycles
// where cores 1 and 2 leave budget on the table; with PTB the spare tokens
// cover the deficit. This example replays the figure's exact numbers.
#include <cstdio>
#include <vector>

#include "core/balancer.hpp"
#include "common/table.hpp"

int main() {
  using namespace ptb;
  constexpr double kGlobalBudget = 40.0;
  constexpr double kLocalBudget = 10.0;

  // Figure 5's per-cycle core powers (watts).
  const std::vector<std::vector<double>> cycles{
      {8.0, 6.0, 15.0, 13.0},   // cycle 1: total 42 > 40
      {9.0, 8.0, 15.0, 9.0},    // cycle 2: total 41 > 40
      {9.0, 11.0, 8.0, 11.0},   // cycle 3: total 39 < 40 -> no action
      {12.0, 11.0, 13.0, 14.0}, // cycle 4: total 50 > 40 -> all throttle
  };

  PtbConfig cfg;
  cfg.enabled = true;
  cfg.wire_latency_override = 1;
  PtbLoadBalancer balancer(cfg, 4, kLocalBudget);

  Table table({"cycle", "total W", "over budget?", "naive throttled",
               "PTB throttled"});
  std::vector<double> eff;
  Cycle now = 0;
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    const auto& p = cycles[i];
    double total = 0.0;
    for (double w : p) total += w;
    const bool over = total > kGlobalBudget;

    int naive_throttled = 0;
    for (double w : p)
      if (over && w > kLocalBudget) ++naive_throttled;

    // Run the balancer twice per figure-cycle so this cycle's spare tokens
    // can land (1-cycle wires) before counting who still must throttle.
    balancer.cycle(now++, p, over, PtbPolicy::kToAll, eff);
    balancer.cycle(now++, p, over, PtbPolicy::kToAll, eff);
    int ptb_throttled = 0;
    for (std::size_t c = 0; c < p.size(); ++c)
      if (over && p[c] > eff[c]) ++ptb_throttled;

    const auto row = table.add_row();
    table.set(row, 0, static_cast<std::int64_t>(i + 1));
    table.set(row, 1, total, 0);
    table.set(row, 2, over ? "yes" : "no");
    table.set(row, 3, static_cast<std::int64_t>(naive_throttled));
    table.set(row, 4, static_cast<std::int64_t>(ptb_throttled));
  }
  table.print("Figure 5: why equal splitting wastes tokens (40 W budget)");
  std::printf(
      "Naive equal shares throttle cores 3&4 even when cores 1&2 have\n"
      "spare watts; PTB lends the spare tokens and avoids the slowdown.\n");
  return 0;
}

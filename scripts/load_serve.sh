#!/usr/bin/env bash
# Load/soak harness for ptb-serve: fans concurrent clients (bash /dev/tcp,
# no curl needed) across several tenants against a fresh daemon, watching
# the admission gauge the whole time, then checks the /metrics ledger:
#   - every request got an HTTP 200 back;
#   - the in-flight gauge never exceeded --host-tokens (the TokenAdmission
#     budget — the host-side twin of the paper's token policies);
#   - the cache ledger is coherent: hits + misses == requests answered,
#     and nothing was rejected as corrupt.
# Each client cycles a small set of distinct configs (seed = slot), so the
# first wave simulates and the rest is served from cache — a realistic
# mix of cold and hot traffic.
#
# Usage: scripts/load_serve.sh [clients] [requests-per-client] [build-dir]
#   clients              concurrent client loops (default 4)
#   requests-per-client  blocking /v1/run?wait=1 posts each (default 8)
#   build-dir            build tree with tools/ptb-serve (default build)
# Exit: 0 all checks pass, 1 otherwise.
set -u

clients="${1:-4}"
reqs="${2:-8}"
build_dir="${3:-build}"
serve_bin="$build_dir/tools/ptb-serve"
host_tokens=2
[[ -x "$serve_bin" ]] || { echo "FAIL: $serve_bin not built"; exit 1; }

tmp="$(mktemp -d)"
serve_pid=""
watch_pid=""
cleanup() {
  [[ -n "$watch_pid" ]] && kill "$watch_pid" 2>/dev/null
  [[ -n "$serve_pid" ]] && kill -KILL "$serve_pid" 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT
fail=0

check() {
  local desc="$1"; shift
  if "$@"; then
    echo "ok   [$desc]"
  else
    echo "FAIL [$desc]"
    fail=1
  fi
}

# http METHOD TARGET BODY TENANT OUTFILE
http() {
  local method="$1" target="$2" body="$3" tenant="$4" out="$5"
  exec 3<>"/dev/tcp/127.0.0.1/$port" || return 1
  printf '%s %s HTTP/1.1\r\nHost: load\r\nX-Ptb-Tenant: %s\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
    "$method" "$target" "$tenant" "${#body}" "$body" >&3
  cat <&3 > "$out"
  exec 3<&- 3>&-
}

metric() { # metric NAME FILE -> value ("" when absent)
  sed -n "s/^$1 //p" "$2"
}

"$serve_bin" --port 0 --cache-dir "$tmp/cache" --jobs 4 \
  --host-tokens "$host_tokens" --policy to_all > "$tmp/serve.log" 2>&1 &
serve_pid=$!
port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/^ptb-serve: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
         "$tmp/serve.log")
  [[ -n "$port" ]] && break
  kill -0 "$serve_pid" 2>/dev/null || break
  sleep 0.1
done
[[ -n "$port" ]] || { echo "FAIL: daemon did not come up"; cat "$tmp/serve.log"; exit 1; }
echo "daemon up on port $port ($clients clients x $reqs requests," \
     "host tokens $host_tokens)"

# Admission watcher: sample the in-flight gauge for the whole run. A
# sample can only under-count a violation, never invent one.
( while :; do
    http GET /metrics '' watcher "$tmp/m.watch" 2>/dev/null || continue
    v=$(metric ptb_serve_jobs_in_flight "$tmp/m.watch")
    [[ -n "$v" && "${v%%.*}" -gt "$host_tokens" ]] && echo "$v" >> "$tmp/over"
    sleep 0.05
  done ) &
watch_pid=$!

client() { # client INDEX
  local idx="$1" bad=0
  local tenant="tenant-$((idx % 3))"
  for r in $(seq 1 "$reqs"); do
    # 4 distinct configs shared by all clients: cold on first touch, hot
    # after — exercises concurrent simulate-vs-cache for the same key too.
    local seed=$(( (idx + r) % 4 + 1 ))
    local body='{"benchmark":"fft","config":{"num_cores":2,"max_cycles":20000,"seed":'"$seed"'}}'
    http POST '/v1/run?wait=1' "$body" "$tenant" "$tmp/c$idx.r$r" || bad=1
    grep -q '^HTTP/1.1 200' "$tmp/c$idx.r$r" || bad=1
  done
  echo "$bad" > "$tmp/c$idx.status"
}

client_pids=()
for i in $(seq 1 "$clients"); do
  client "$i" &
  client_pids+=($!)
done
wait "${client_pids[@]}"
# (the daemon and the watcher are still running; only the clients joined)

bad_clients=0
for i in $(seq 1 "$clients"); do
  [[ "$(cat "$tmp/c$i.status" 2>/dev/null)" == "0" ]] || bad_clients=$((bad_clients + 1))
done
check "every client got 200s everywhere" test "$bad_clients" -eq 0

kill "$watch_pid" 2>/dev/null; wait "$watch_pid" 2>/dev/null; watch_pid=""
check "in-flight never exceeded the token budget" test ! -s "$tmp/over"

http GET /metrics '' ledger "$tmp/m.final"
sed '1,/^\r*$/d' "$tmp/m.final" > "$tmp/m.body"
requests=$(metric ptb_serve_http_requests "$tmp/m.body")
hits=$(metric ptb_serve_cache_hits "$tmp/m.body")
misses=$(metric ptb_serve_cache_misses "$tmp/m.body")
corrupt=$(metric ptb_serve_cache_corrupt "$tmp/m.body")
units=$(metric ptb_serve_units_completed "$tmp/m.body")
total=$((clients * reqs))
echo "ledger: requests=$requests hits=$hits misses=$misses" \
     "corrupt=$corrupt units=$units (clients sent $total runs)"

check "request counter covers the load" \
  test "${requests%%.*}" -ge "$total"
check "cache ledger coherent (hits + misses = units answered)" \
  test "$(( ${hits%%.*} + ${misses%%.*} ))" -eq "${units%%.*}"
check "no corrupt entries" test "${corrupt%%.*}" -eq 0
# 4 distinct configs: everything past each key's first-touch window must
# hit. Concurrent clients may benignly double-simulate a key while its
# first store is still in flight, so allow a small race allowance.
check "cache absorbed the hot traffic (misses <= configs + races)" \
  test "${misses%%.*}" -le "$((4 + clients * 2))"

kill -TERM "$serve_pid"
wait "$serve_pid"
rc=$?
serve_pid=""
check "graceful shutdown under load (exit 0)" test "$rc" -eq 0

if [[ $fail -ne 0 ]]; then
  echo "load_serve: FAILED"
  exit 1
fi
echo "load_serve: OK"

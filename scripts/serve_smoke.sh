#!/usr/bin/env bash
# End-to-end smoke + short soak for the ptb-serve daemon (CI runs this on
# every push; see also tests/serve/ for the in-process coverage):
#   1. start the daemon on an ephemeral port with a fresh cache dir;
#   2. POST /v1/run?wait=1 twice: the first must miss, the second must hit
#      and the two bodies must be byte-identical (cmp);
#   3. POST /v1/sweep?wait=1 twice: the second may contain no "miss";
#   4. scrape /metrics and check the request/cache/queue series;
#   5. SIGTERM -> graceful drain, clean exit;
#   6. restart on the same cache dir: the very first request must be a hit
#      with the same bytes — the cache, not the process, owns the results.
#
# Dependency-free: HTTP via bash /dev/tcp (the daemon closes after each
# response, so reading to EOF is a complete exchange).
#
# Usage: scripts/serve_smoke.sh [build-dir]   (default: build)
# Exit: 0 all checks pass, 1 otherwise.
set -u

build_dir="${1:-build}"
serve_bin="$build_dir/tools/ptb-serve"
[[ -x "$serve_bin" ]] || { echo "FAIL: $serve_bin not built"; exit 1; }

tmp="$(mktemp -d)"
serve_pid=""
cleanup() {
  [[ -n "$serve_pid" ]] && kill -KILL "$serve_pid" 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT
fail=0

run_body='{"benchmark":"fft","config":{"num_cores":2,"max_cycles":20000}}'
sweep_body='{"requests":[{"benchmark":"fft","config":{"num_cores":2,"max_cycles":20000}},{"benchmark":"radix","config":{"num_cores":2,"max_cycles":20000}}]}'

# http METHOD TARGET BODY OUTFILE — one exchange, full response to OUTFILE.
http() {
  local method="$1" target="$2" body="$3" out="$4"
  exec 3<>"/dev/tcp/127.0.0.1/$port" || return 1
  printf '%s %s HTTP/1.1\r\nHost: smoke\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
    "$method" "$target" "${#body}" "$body" >&3
  cat <&3 > "$out"
  exec 3<&- 3>&-
}

# body_of RESPONSE OUTFILE — strips the head (up to the first blank line).
body_of() {
  sed '1,/^\r*$/d' "$1" > "$2"
}

check() { # check DESC CONDITION...
  local desc="$1"; shift
  if "$@"; then
    echo "ok   [$desc]"
  else
    echo "FAIL [$desc]"
    fail=1
  fi
}

start_daemon() { # start_daemon LOGFILE
  local log="$1"
  "$serve_bin" --port 0 --cache-dir "$tmp/cache" --jobs 2 > "$log" 2>&1 &
  serve_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^ptb-serve: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
           "$log")
    [[ -n "$port" ]] && return 0
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
  done
  echo "FAIL: daemon did not come up"; cat "$log"; exit 1
}

stop_daemon() { # stop_daemon LOGFILE
  local log="$1"
  kill -TERM "$serve_pid"
  wait "$serve_pid"
  local rc=$?
  serve_pid=""
  check "clean shutdown (exit 0)" test "$rc" -eq 0
  check "drain logged" grep -q "shutdown complete" "$log"
}

# --- first daemon: miss -> hit, sweep, metrics, drain -----------------------
start_daemon "$tmp/serve1.log"
echo "daemon up on port $port (cache $tmp/cache)"

http POST '/v1/run?wait=1' "$run_body" "$tmp/r1"
check "first run is 200" grep -q '^HTTP/1.1 200' "$tmp/r1"
check "first run is a miss" grep -qi '^x-ptb-cache: miss' "$tmp/r1"

http POST '/v1/run?wait=1' "$run_body" "$tmp/r2"
check "second run is a hit" grep -qi '^x-ptb-cache: hit' "$tmp/r2"
body_of "$tmp/r1" "$tmp/r1.body"
body_of "$tmp/r2" "$tmp/r2.body"
check "hit is byte-identical to the miss" cmp -s "$tmp/r1.body" "$tmp/r2.body"

http POST '/v1/sweep?wait=1' "$sweep_body" "$tmp/s1"
check "first sweep is 200" grep -q '^HTTP/1.1 200' "$tmp/s1"
http POST '/v1/sweep?wait=1' "$sweep_body" "$tmp/s2"
body_of "$tmp/s2" "$tmp/s2.body"
check "second sweep is all hits" bash -c \
  '! grep -q "\"cache\":\"miss\"" "$1"' -- "$tmp/s2.body"

# Short soak: hammer the cached answer, then make sure the counters moved.
for _ in $(seq 1 10); do
  http POST '/v1/run?wait=1' "$run_body" "$tmp/rs"
  grep -qi '^x-ptb-cache: hit' "$tmp/rs" || { echo "FAIL [soak hit]"; fail=1; }
done

http GET '/metrics' '' "$tmp/m"
body_of "$tmp/m" "$tmp/m.body"
for series in ptb_serve_http_requests ptb_serve_cache_hits \
              ptb_serve_cache_misses ptb_serve_queue_depth \
              ptb_serve_jobs_in_flight ptb_serve_http_request_ms; do
  check "metrics expose $series" grep -q "$series" "$tmp/m.body"
done
check "no corrupt entries seen" grep -q '^ptb_serve_cache_corrupt 0' \
  "$tmp/m.body"

stop_daemon "$tmp/serve1.log"

# --- second daemon, same cache dir: restart keeps the bytes -----------------
start_daemon "$tmp/serve2.log"
http POST '/v1/run?wait=1' "$run_body" "$tmp/r3"
check "post-restart run is a hit" grep -qi '^x-ptb-cache: hit' "$tmp/r3"
body_of "$tmp/r3" "$tmp/r3.body"
check "post-restart bytes identical" cmp -s "$tmp/r1.body" "$tmp/r3.body"
stop_daemon "$tmp/serve2.log"

if [[ $fail -ne 0 ]]; then
  echo "serve_smoke: FAILED"
  exit 1
fi
echo "serve_smoke: OK"

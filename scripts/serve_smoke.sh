#!/usr/bin/env bash
# End-to-end smoke + short soak for the ptb-serve daemon (CI runs this on
# every push; see also tests/serve/ for the in-process coverage):
#   1. start the daemon on an ephemeral port with a fresh cache dir;
#   2. POST /v1/run?wait=1 twice: the first must miss, the second must hit
#      and the two bodies must be byte-identical (cmp);
#   3. POST /v1/sweep?wait=1 twice: the second may contain no "miss";
#   4. scrape /metrics and check the request/cache/queue/stage series;
#   5. stream GET /v1/jobs/{id}/events for a fresh async run: progress
#      events must arrive before the terminal one;
#   6. export GET /v1/trace through ptb-trace serve to Perfetto JSON (the
#      JSON is copied to $SERVE_SMOKE_ARTIFACT_DIR when set, for CI upload);
#   7. check the structured JSON access log (one line per request);
#   8. SIGTERM -> graceful drain, clean exit;
#   9. restart on the same cache dir: the very first request must be a hit
#      with the same bytes — the cache, not the process, owns the results.
#
# Dependency-free: HTTP via bash /dev/tcp (the daemon closes after each
# response, so reading to EOF is a complete exchange; streamed responses
# end at the terminal event, so the same read works there too).
#
# Usage: scripts/serve_smoke.sh [build-dir]   (default: build)
# Exit: 0 all checks pass, 1 otherwise.
set -u

build_dir="${1:-build}"
serve_bin="$build_dir/tools/ptb-serve"
trace_bin="$build_dir/tools/ptb-trace"
[[ -x "$serve_bin" ]] || { echo "FAIL: $serve_bin not built"; exit 1; }
[[ -x "$trace_bin" ]] || { echo "FAIL: $trace_bin not built"; exit 1; }

tmp="$(mktemp -d)"
serve_pid=""
cleanup() {
  [[ -n "$serve_pid" ]] && kill -KILL "$serve_pid" 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT
fail=0

run_body='{"benchmark":"fft","config":{"num_cores":2,"max_cycles":20000}}'
sweep_body='{"requests":[{"benchmark":"fft","config":{"num_cores":2,"max_cycles":20000}},{"benchmark":"radix","config":{"num_cores":2,"max_cycles":20000}}]}'

# http METHOD TARGET BODY OUTFILE — one exchange, full response to OUTFILE.
http() {
  local method="$1" target="$2" body="$3" out="$4"
  exec 3<>"/dev/tcp/127.0.0.1/$port" || return 1
  printf '%s %s HTTP/1.1\r\nHost: smoke\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
    "$method" "$target" "${#body}" "$body" >&3
  cat <&3 > "$out"
  exec 3<&- 3>&-
}

# body_of RESPONSE OUTFILE — strips the head (up to the first blank line).
body_of() {
  sed '1,/^\r*$/d' "$1" > "$2"
}

# raw_body_of RESPONSE OUTFILE — binary-safe head strip (sed is line-based
# and would mangle the span log's binary bytes): find the byte offset of
# the blank "\r\n" line ending the head and copy everything after it.
# (grep can't search for CRLFCRLF directly — a newline in the pattern
# splits it into multiple patterns — so match the blank line instead.)
raw_body_of() {
  local off
  off=$(grep -abm1 $'^\r$' "$1" | cut -d: -f1)
  [[ -n "$off" ]] || return 1
  tail -c +"$((off + 3))" "$1" > "$2"
}

check() { # check DESC CONDITION...
  local desc="$1"; shift
  if "$@"; then
    echo "ok   [$desc]"
  else
    echo "FAIL [$desc]"
    fail=1
  fi
}

start_daemon() { # start_daemon LOGFILE ACCESSLOG
  local log="$1" access="$2"
  "$serve_bin" --port 0 --cache-dir "$tmp/cache" --jobs 2 \
    --log-file "$access" --log-level debug > "$log" 2>&1 &
  serve_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^ptb-serve: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
           "$log")
    [[ -n "$port" ]] && return 0
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
  done
  echo "FAIL: daemon did not come up"; cat "$log"; exit 1
}

stop_daemon() { # stop_daemon LOGFILE
  local log="$1"
  kill -TERM "$serve_pid"
  wait "$serve_pid"
  local rc=$?
  serve_pid=""
  check "clean shutdown (exit 0)" test "$rc" -eq 0
  check "drain logged" grep -q "shutdown complete" "$log"
}

# --- first daemon: miss -> hit, sweep, metrics, drain -----------------------
start_daemon "$tmp/serve1.log" "$tmp/access1.log"
echo "daemon up on port $port (cache $tmp/cache)"

http POST '/v1/run?wait=1' "$run_body" "$tmp/r1"
check "first run is 200" grep -q '^HTTP/1.1 200' "$tmp/r1"
check "first run is a miss" grep -qi '^x-ptb-cache: miss' "$tmp/r1"

http POST '/v1/run?wait=1' "$run_body" "$tmp/r2"
check "second run is a hit" grep -qi '^x-ptb-cache: hit' "$tmp/r2"
body_of "$tmp/r1" "$tmp/r1.body"
body_of "$tmp/r2" "$tmp/r2.body"
check "hit is byte-identical to the miss" cmp -s "$tmp/r1.body" "$tmp/r2.body"

http POST '/v1/sweep?wait=1' "$sweep_body" "$tmp/s1"
check "first sweep is 200" grep -q '^HTTP/1.1 200' "$tmp/s1"
http POST '/v1/sweep?wait=1' "$sweep_body" "$tmp/s2"
body_of "$tmp/s2" "$tmp/s2.body"
check "second sweep is all hits" bash -c \
  '! grep -q "\"cache\":\"miss\"" "$1"' -- "$tmp/s2.body"

# Short soak: hammer the cached answer, then make sure the counters moved.
for _ in $(seq 1 10); do
  http POST '/v1/run?wait=1' "$run_body" "$tmp/rs"
  grep -qi '^x-ptb-cache: hit' "$tmp/rs" || { echo "FAIL [soak hit]"; fail=1; }
done

http GET '/metrics' '' "$tmp/m"
body_of "$tmp/m" "$tmp/m.body"
for series in ptb_serve_http_requests ptb_serve_cache_hits \
              ptb_serve_cache_misses ptb_serve_queue_depth \
              ptb_serve_jobs_in_flight ptb_serve_http_request_ms \
              ptb_serve_http_streams ptb_serve_stage_simulate_ms \
              ptb_serve_stage_cache_probe_ms; do
  check "metrics expose $series" grep -q "$series" "$tmp/m.body"
done
check "no corrupt entries seen" grep -q '^ptb_serve_cache_corrupt 0' \
  "$tmp/m.body"

# --- live progress stream ---------------------------------------------------
# A config no earlier request used, so the run really simulates and emits
# progress events (a cache hit has nothing to report). The stream blocks
# until the terminal event, so reading to EOF captures the whole feed.
events_body='{"benchmark":"fft","config":{"num_cores":2,"max_cycles":26000}}'
http POST '/v1/run' "$events_body" "$tmp/ev202"
check "async run accepted (202)" grep -q '^HTTP/1.1 202' "$tmp/ev202"
body_of "$tmp/ev202" "$tmp/ev202.body"
job=$(sed -n 's/.*"job":"\([^"]*\)".*/\1/p' "$tmp/ev202.body")
check "202 body names the job" test -n "$job"
http GET "/v1/jobs/$job/events" '' "$tmp/ev"
check "events stream is chunked SSE" grep -qi '^transfer-encoding: chunked' \
  "$tmp/ev"
check "stream carries progress events" grep -q '^event: progress' "$tmp/ev"
check "stream ends with a terminal event" grep -qE '^event: (done|aborted)' \
  "$tmp/ev"
check "progress precedes the terminal event" bash -c \
  'p=$(grep -n "^event: progress" "$1" | head -1 | cut -d: -f1)
   t=$(grep -nE "^event: (done|aborted)" "$1" | head -1 | cut -d: -f1)
   [[ -n "$p" && -n "$t" && "$p" -lt "$t" ]]' -- "$tmp/ev"

# --- request-span trace export ----------------------------------------------
http GET '/v1/trace' '' "$tmp/tr"
check "trace endpoint is 200" grep -q '^HTTP/1.1 200' "$tmp/tr"
raw_body_of "$tmp/tr" "$tmp/trace.bin"
check "ptb-trace serve renders Perfetto JSON" \
  "$trace_bin" serve "$tmp/trace.bin" "$tmp/serve-trace.json"
check "trace JSON has traceEvents" grep -q '"traceEvents"' \
  "$tmp/serve-trace.json"
check "trace JSON names the simulate stage" grep -q '"name":"simulate"' \
  "$tmp/serve-trace.json"
if [[ -n "${SERVE_SMOKE_ARTIFACT_DIR:-}" ]]; then
  mkdir -p "$SERVE_SMOKE_ARTIFACT_DIR"
  cp "$tmp/serve-trace.json" "$SERVE_SMOKE_ARTIFACT_DIR/"
  echo "trace JSON copied to $SERVE_SMOKE_ARTIFACT_DIR/serve-trace.json"
fi

stop_daemon "$tmp/serve1.log"

# --- structured access log --------------------------------------------------
check "access log written" test -s "$tmp/access1.log"
check "access log covers /v1/run" grep -q '"path":"/v1/run"' \
  "$tmp/access1.log"
check "access log carries trace ids" grep -q '"trace":"' "$tmp/access1.log"
check "debug level adds stage durations" grep -q '"stages":{' \
  "$tmp/access1.log"
if command -v python3 >/dev/null 2>&1; then
  check "every access-log line is valid JSON" python3 -c '
import json, sys
for line in open(sys.argv[1]):
    if line.strip():
        json.loads(line)' "$tmp/access1.log"
fi

# --- second daemon, same cache dir: restart keeps the bytes -----------------
start_daemon "$tmp/serve2.log" "$tmp/access2.log"
http POST '/v1/run?wait=1' "$run_body" "$tmp/r3"
check "post-restart run is a hit" grep -qi '^x-ptb-cache: hit' "$tmp/r3"
body_of "$tmp/r3" "$tmp/r3.body"
check "post-restart bytes identical" cmp -s "$tmp/r1.body" "$tmp/r3.body"
stop_daemon "$tmp/serve2.log"

if [[ $fail -ne 0 ]]; then
  echo "serve_smoke: FAILED"
  exit 1
fi
echo "serve_smoke: OK"

#!/usr/bin/env bash
# Regenerate every file under results/: one .txt (human-readable tables) and
# one .json (machine-readable, see src/sim/reporting.hpp) per bench binary.
#
# Usage: scripts/regen_results.sh [-j N] [build-dir]
#   -j N       worker threads per bench binary (default: all hardware threads)
#   build-dir  CMake build tree containing bench/ (default: build)
#
# Output is deterministic: the same sources produce byte-identical .txt and
# .json files at any -j value, so a clean `git diff` after running this
# script means the results are up to date.
set -euo pipefail

jobs=""
while getopts "j:" opt; do
  case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N] [build-dir]" >&2; exit 2 ;;
  esac
done
shift $((OPTIND - 1))

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
bench_dir="$build_dir/bench"
results_dir="$repo_root/results"

if [[ ! -d "$bench_dir" ]]; then
  echo "error: $bench_dir not found; build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

jobs_flag=()
if [[ -n "$jobs" ]]; then
  jobs_flag=(--jobs "$jobs")
fi

mkdir -p "$results_dir"

# Simulation-table benches: text tables to stdout, structured JSON via --json.
benches=(
  bench_table2_workloads
  bench_fig02_naive
  bench_fig03_breakdown
  bench_fig04_spinpower
  bench_fig06_spintrace
  bench_fig09_scaling
  bench_fig10_toall
  bench_fig11_toone
  bench_fig12_dynamic
  bench_fig13_perf
  bench_fig14_relaxed
  bench_ivd_tdp
  bench_ext_variance
  bench_ext_thermal
  bench_ext_spingate
  bench_ext_baselines
  bench_ext_cluster
  bench_abl_tokens
  bench_abl_substrate
)

for b in "${benches[@]}"; do
  echo "== $b"
  "$bench_dir/$b" "${jobs_flag[@]}" \
      --json "$results_dir/$b.json" > "$results_dir/$b.txt"
done

# The ptb-stats regression golden: the Fig. 10 reference stats dump (fft,
# PTB+2Level(dyn), 16 cores, sampled every 4096 cycles) with the volatile
# wall-clock gauges stripped, so the golden is machine-independent. CI's
# stats smoke step gates fresh dumps against it with ptb-stats regress.
echo "== stats_fig10 (ptb-stats regression golden)"
"$bench_dir/bench_fig10_toall" --only fft --jobs 2 \
    --stats /tmp/ptb_stats_fig10.json:4096 > /dev/null
"$build_dir/tools/ptb-stats" dump /tmp/ptb_stats_fig10.json --json \
    --no-volatile > "$results_dir/stats_fig10.json"

# bench_micro is a google-benchmark timing harness: its numbers are
# machine-dependent, so only the .txt snapshot is kept (--json would write
# google-benchmark's own JSON schema, including wall-clock timings that
# would churn on every run).
echo "== bench_micro"
"$bench_dir/bench_micro" --benchmark_min_time=0.05 \
    > "$results_dir/bench_micro.txt"

echo "done: $(ls "$results_dir" | wc -l) files in results/"

#!/usr/bin/env bash
# Benchmark-regression smoke gate: reruns the simulator-throughput
# microbenchmark and fails when it regresses more than PTB_BENCH_GATE_FRAC
# (default 0.20, i.e. >20% slower) against the checked-in baseline in
# results/bench_micro.txt.
#
# Usage: scripts/bench_gate.sh [build-dir]   (default: build-release)
#
# Also checks intra-run scaling: the same benchmark at --sim-threads 4 must
# beat the serial run by PTB_BENCH_SCALE_MIN (default 1.5x). Skipped on
# hosts with < 4 hardware threads.
#
# Knobs:
#   PTB_BENCH_GATE=off        skip entirely (noisy/shared runners)
#   PTB_BENCH_GATE_FRAC=0.30  allow a larger regression fraction
#   PTB_BENCH_SCALE_MIN=1.2   relax the --sim-threads 4 speedup floor
#
# The baseline is a wall-clock snapshot from one machine, so this is a
# smoke gate against order-of-magnitude regressions (an accidental debug
# build, a new per-cycle allocation), not a precision benchmark: refresh
# results/bench_micro.txt on the machine that recorded it when the hot
# path intentionally changes (see EXPERIMENTS.md).
set -euo pipefail

if [[ "${PTB_BENCH_GATE:-on}" == "off" ]]; then
  echo "bench gate: skipped (PTB_BENCH_GATE=off)"
  exit 0
fi

build_dir="${1:-build-release}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
baseline_file="$repo_root/results/bench_micro.txt"
bench="$repo_root/$build_dir/bench/bench_micro"
filter='BM_SimulatorThroughput/16'
frac="${PTB_BENCH_GATE_FRAC:-0.20}"

[[ -x "$bench" ]] || { echo "bench gate: $bench not built" >&2; exit 1; }

extract_rate() {  # file -> items_per_second in M/s for $filter
  awk -v name="$filter" '$1 == name {
    for (i = 2; i <= NF; ++i) if ($i ~ /^items_per_second=/) {
      sub(/^items_per_second=/, "", $i); sub(/M\/s$/, "", $i); print $i
    }
  }' "$1"
}

base_rate="$(extract_rate "$baseline_file")"
[[ -n "$base_rate" ]] || {
  echo "bench gate: no $filter baseline in $baseline_file" >&2; exit 1
}

# Best of three repetitions: the max is the least noisy statistic for a
# throughput measurement on a shared runner.
out="$(mktemp)"
"$bench" --benchmark_filter="$filter" --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=false > "$out" 2>/dev/null
new_rate="$(extract_rate "$out" | sort -g | tail -1)"
rm -f "$out"
[[ -n "$new_rate" ]] || { echo "bench gate: no benchmark output" >&2; exit 1; }

awk -v base="$base_rate" -v new="$new_rate" -v frac="$frac" 'BEGIN {
  floor = base * (1.0 - frac)
  printf "bench gate: %s baseline %.3fM/s, measured %.3fM/s, floor %.3fM/s\n",
         "'"$filter"'", base, new, floor
  if (new < floor) {
    printf "bench gate: FAIL — >%.0f%% regression; if the slowdown is " \
           "intentional, refresh results/bench_micro.txt (or set " \
           "PTB_BENCH_GATE_FRAC / PTB_BENCH_GATE=off for noisy runners)\n",
           frac * 100.0
    exit 1
  }
  print "bench gate: OK"
}'

# --- intra-run scaling check (--sim-threads) ---------------------------------
# Re-times the same benchmark with the modeled cores sharded across 4 host
# threads and requires a real speedup over the serial run (floor
# PTB_BENCH_SCALE_MIN, default 1.5x — deliberately below the ~3x a healthy
# 4-thread shard shows, so scheduler noise does not flake the gate; see
# EXPERIMENTS.md "Intra-run scaling" for measured numbers). Skipped when
# the host has fewer than 4 hardware threads: sharding cannot beat serial
# without CPUs to run the shards on, so a pass/fail there would measure the
# host, not the code.
hw_threads="$(nproc 2>/dev/null || echo 1)"
scale_min="${PTB_BENCH_SCALE_MIN:-1.5}"
if [[ "$hw_threads" -lt 4 ]]; then
  echo "bench gate: intra-run scaling check skipped (host has $hw_threads" \
       "hardware thread(s); need >= 4 — see EXPERIMENTS.md)"
  exit 0
fi

out="$(mktemp)"
"$bench" --sim-threads 4 --benchmark_filter="$filter" \
  --benchmark_repetitions=3 --benchmark_report_aggregates_only=false \
  > "$out" 2>/dev/null
sharded_rate="$(extract_rate "$out" | sort -g | tail -1)"
rm -f "$out"
[[ -n "$sharded_rate" ]] || {
  echo "bench gate: no --sim-threads 4 benchmark output" >&2; exit 1
}

awk -v serial="$new_rate" -v sharded="$sharded_rate" -v min="$scale_min" \
  'BEGIN {
  speedup = sharded / serial
  printf "bench gate: --sim-threads 4 %.3fM/s vs serial %.3fM/s " \
         "(%.2fx, floor %.2fx)\n", sharded, serial, speedup, min
  if (speedup < min) {
    printf "bench gate: FAIL — intra-run sharding no longer scales; a " \
           "serialization was likely added to the parallel region of the " \
           "cycle loop (see DESIGN.md threading model)\n"
    exit 1
  }
  print "bench gate: scaling OK"
}'

#!/usr/bin/env bash
# Static checks for the simulator:
#   1. determinism rules (grep-based, always run): the result path must not
#      use wall-clock time, hardware entropy, or iteration-order-dependent
#      containers — every table/JSON byte must be reproducible at any
#      worker count (see sim/run_pool.hpp and scripts/regen_results.sh);
#   2. doc drift (always run): every CLI flag the shared bench harness
#      (bench/bench_util.hpp) advertises must be documented in
#      EXPERIMENTS.md;
#   3. clang-tidy with the repo's .clang-tidy profile, when clang-tidy and
#      a compile database are available (skipped with a warning otherwise —
#      the GCC-only container still gets the determinism checks);
#   4. ptb-lint (tools/ptb_lint.cpp), the token-level contract checkers the
#      greps above cannot express (transitive phase purity, fingerprint
#      coverage, cycle-loop FP reductions); runs from the build tree and
#      is skipped with a warning when the binary has not been built.
#
# Usage: scripts/lint.sh [build-dir]
#   build-dir  build tree with compile_commands.json (default: build)
# Environment:
#   PTB_LINT_ROOT  tree to lint instead of this repo (used by the lint.sh
#                  self-tests to run the rules against seeded violations)
#   PTB_LINT_BIN   ptb-lint binary (default: <build-dir>/tools/ptb-lint)
# Exit code: 0 clean, 1 findings, 2 usage error.
set -uo pipefail

repo_root="${PTB_LINT_ROOT:-$(cd "$(dirname "$0")/.." && pwd)}"
build_dir="${1:-$repo_root/build}"
cd "$repo_root" || exit 2

# Sources whose output feeds results/ (simulation + reporting); tests and
# tools may use whatever they like.
result_paths=(src bench examples)
fail=0

note() { printf '%s\n' "$*"; }
finding() {
  printf '\nlint: %s\n' "$1"
  printf '%s\n' "$2"
  fail=1
}

# --- 1. determinism rules ---------------------------------------------------

# Hardware entropy / wall-clock time: a simulator result must be a pure
# function of (config, seed).
out=$(grep -rn --include='*.cpp' --include='*.hpp' \
  -e 'std::random_device' \
  -e '\bsrand(' -e '\brand()' \
  -e '\btime(nullptr)' -e '\btime(NULL)' -e '\btime(0)' \
  -e 'std::chrono::system_clock' \
  -e 'high_resolution_clock' \
  "${result_paths[@]}" || true)
if [[ -n "$out" ]]; then
  finding "non-deterministic source in a result path (entropy/wall clock):" \
    "$out"
fi

# Environment reads are a hidden config channel: a run's result must be a
# pure function of (config, seed), never of the invoking shell.
out=$(grep -rn --include='*.cpp' --include='*.hpp' \
  -e '\bgetenv *(' -e 'std::getenv' \
  "${result_paths[@]}" || true)
if [[ -n "$out" ]]; then
  finding "environment read in a result path (results must be a pure \
function of config and seed; plumb it through SimConfig/CLI instead):" "$out"
fi

# steady_clock is fine for profiling prints but must never steer a run;
# allow it only in run_pool (idle accounting), bench timing harnesses,
# lines explicitly annotated `lint:allowed-wallclock` (the simulator's
# volatile self-profiling stats, which deterministic dumps exclude), and
# the serve HTTP transport (src/serve/http.*): a daemon legitimately
# measures request latency and socket timeouts, and its single wall-clock
# site (now_ms) is architecturally unable to reach simulation results —
# the simulator consumes only (profile, config, seed). The rest of
# src/serve (scheduler, codec, admission) stays under the rule: nothing
# that picks or builds a simulation may read the clock.
out=$(grep -rn --include='*.cpp' --include='*.hpp' \
  -e 'steady_clock' "${result_paths[@]}" \
  | grep -v -e 'run_pool' -e 'bench/' -e 'lint:allowed-wallclock' \
            -e 'src/serve/http\.' || true)
if [[ -n "$out" ]]; then
  finding "steady_clock outside the allow-listed timing harnesses:" "$out"
fi

# Iterating an unordered container feeds pointer-hash order into whatever
# consumes the loop; on a result path that breaks byte-identical output.
# Keyed lookup is fine, so flag only range-for over unordered containers
# and ordered-output helpers applied to them.
out=$(grep -rn --include='*.cpp' --include='*.hpp' -A 2 \
  -e 'for *( *\(const *\)\?auto *&* *\[*[A-Za-z_].*: *[A-Za-z_]*unordered' \
  "${result_paths[@]}" || true)
if [[ -n "$out" ]]; then
  finding "range-for over an unordered container in a result path \
(iteration order is unspecified; use std::map/std::set or sort first):" "$out"
fi

# --- 2. doc drift: bench CLI flags must be documented -----------------------

# Every flag the shared bench CLI (bench/bench_util.hpp) advertises in its
# --help must appear in EXPERIMENTS.md, so the runbook can never silently
# fall behind the binaries (PRs 2-5 grew --trace/--stats/--audit; this
# check exists because the docs missed them). Flags are extracted from the
# header's string literals only — prose comments don't count.
bench_flags=$(grep -o '"[^"]*"' bench/bench_util.hpp \
  | grep -o -- '--[a-z][a-z-]*' | sort -u)
undocumented=""
for flag in $bench_flags; do
  if ! grep -q -- "$flag" EXPERIMENTS.md; then
    undocumented+="$flag"$'\n'
  fi
done
if [[ -n "$undocumented" ]]; then
  finding "bench CLI flag(s) missing from EXPERIMENTS.md \
(document them in the runbook or drop them from bench/bench_util.hpp):" \
    "$undocumented"
fi

# --- 3. clang-tidy (optional) ----------------------------------------------

if command -v clang-tidy >/dev/null 2>&1; then
  if [[ -f "$build_dir/compile_commands.json" ]]; then
    note "running clang-tidy against $build_dir/compile_commands.json ..."
    files=$(git ls-files 'src/**/*.cpp' 2>/dev/null || \
            find src -name '*.cpp' | sort)
    if ! clang-tidy -p "$build_dir" --quiet $files; then
      fail=1
    fi
  else
    note "warning: $build_dir/compile_commands.json not found; skipping" \
         "clang-tidy (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
  fi
else
  note "warning: clang-tidy not installed; skipping static analysis" \
       "(determinism checks still ran)"
fi

# --- 4. ptb-lint: the token-level contract checkers --------------------------

# The checks grep cannot express: transitive phase purity against the
# DESIGN.md phase diagram, SimConfig fingerprint coverage, cycle-loop FP
# reductions, token-exact wall-clock/unordered-iteration findings. The
# binary is dependency-free (tools/lint/), so "not built yet" is the only
# skip reason — CI builds it and treats findings as errors.
ptb_lint="${PTB_LINT_BIN:-$build_dir/tools/ptb-lint}"
if [[ -x "$ptb_lint" ]]; then
  note "running ptb-lint ..."
  out=$("$ptb_lint" --root "$repo_root" 2>&1)
  status=$?
  if [[ $status -eq 1 ]]; then
    finding "ptb-lint contract findings:" "$out"
  elif [[ $status -ne 0 ]]; then
    finding "ptb-lint failed to run (exit $status):" "$out"
  fi
else
  note "warning: $ptb_lint not built; skipping ptb-lint contract checks" \
       "(build the ptb-lint target first)"
fi

if [[ "$fail" -ne 0 ]]; then
  note ""
  note "lint: FAILED"
  exit 1
fi
note "lint: OK"

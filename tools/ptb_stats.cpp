// ptb-stats: inspect and compare stats dumps written by the bench
// binaries' --stats flag (or reporting.hpp stats_json from a test).
//
//   ptb-stats dump FILE [--json] [--no-volatile]
//       validate FILE and print a human-readable table; --json re-emits the
//       canonical JSON serialization instead (useful to normalize a dump
//       captured with volatile stats into a machine-independent golden).
//   ptb-stats diff A B [--tol FRAC] [--all]
//       compare the non-volatile scalars of two dumps; exits 1 when any
//       stat differs by more than FRAC relative (default 0 = exact).
//       --all widens the comparison to volatile stats too.
//   ptb-stats regress NEW GOLDEN [--tol FRAC]
//       regression gate for CI: exits 1 when NEW is missing a golden stat,
//       was produced under a different config fingerprint, or drifts past
//       FRAC relative tolerance (default 0.02). Stats that are new in NEW
//       but absent from GOLDEN only warn — adding instrumentation is not a
//       regression.
//
// Exits 0 on success, 1 on a detected difference/regression or unreadable
// input, 2 on bad usage.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "help_text.hpp"
#include "stats/dump.hpp"
#include "stats/stats.hpp"
#include "tool_util.hpp"

namespace {

int usage(const char* argv0, int rc) {
  std::fprintf(rc == 0 ? stdout : stderr, ptb::tools::kStatsUsage, argv0);
  return rc;
}

bool load_dump(const char* argv0, const std::string& path,
               ptb::StatsDump& out) {
  std::string text;
  if (!ptb::tools::read_text(path, text)) {
    std::fprintf(stderr, "%s: cannot read '%s'\n", argv0, path.c_str());
    return false;
  }
  if (!ptb::StatsDump::parse_json(text, out)) {
    std::fprintf(stderr, "%s: cannot parse '%s' as a PTB stats dump\n",
                 argv0, path.c_str());
    return false;
  }
  return true;
}

void print_dump(const ptb::StatsDump& d, bool include_volatile) {
  std::printf("bench:        %s\n", d.bench.c_str());
  std::printf("cores:        %u\n", d.num_cores);
  std::printf("cycles:       %llu\n",
              static_cast<unsigned long long>(d.cycles));
  std::printf("fingerprint:  %016llx\n",
              static_cast<unsigned long long>(d.config_fingerprint));
  std::printf("scalars:      %zu\n", d.scalars.size());
  std::printf("histograms:   %zu\n", d.dists.size());
  if (d.sample_every > 0) {
    std::printf("samples:      %zu points x %zu columns (every %llu "
                "cycles)\n",
                d.sample_cycles.size(), d.sample_columns.size(),
                static_cast<unsigned long long>(d.sample_every));
  }
  std::printf("\n");
  for (const auto& s : d.scalars) {
    if (s.is_volatile && !include_volatile) continue;
    std::string value;
    if (s.integral) {
      value = std::to_string(s.u64);
    } else {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", s.value);
      value = buf;
    }
    std::printf("%-44s %20s  %s%s\n", s.name.c_str(), value.c_str(),
                ptb::stat_kind_name(s.kind),
                s.is_volatile ? " (volatile)" : "");
  }
  for (const auto& h : d.dists) {
    std::printf("%-44s %20llu  histogram [%g, %g) sum=%g\n", h.name.c_str(),
                static_cast<unsigned long long>(h.total), h.lo, h.hi, h.sum);
  }
}

void print_diff_entries(const std::vector<ptb::StatsDiffEntry>& entries) {
  for (const auto& e : entries) {
    if (e.only_in_a) {
      std::printf("%-44s only in A\n", e.name.c_str());
    } else if (e.only_in_b) {
      std::printf("%-44s only in B\n", e.name.c_str());
    } else {
      std::printf("%-44s A=%.17g B=%.17g rel=%.3e\n", e.name.c_str(), e.a,
                  e.b, e.rel);
    }
  }
}

bool parse_tol(const char* argv0, const char* s, double& tol) {
  if (!ptb::tools::parse_double_arg(s, tol) || tol < 0.0) {
    std::fprintf(stderr, "%s: bad --tol value '%s'\n", argv0, s);
    return false;
  }
  return true;
}

int cmd_dump(const char* argv0, int argc, char** argv) {
  // argv[0] = FILE, then flags.
  if (argc < 1) return usage(argv0, 2);
  bool as_json = false;
  bool include_volatile = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else if (std::strcmp(argv[i], "--no-volatile") == 0) {
      include_volatile = false;
    } else {
      return usage(argv0, 2);
    }
  }
  ptb::StatsDump d;
  if (!load_dump(argv0, argv[0], d)) return 1;
  if (as_json) {
    if (!ptb::tools::write_text("-", d.to_json(include_volatile))) return 1;
  } else {
    print_dump(d, include_volatile);
  }
  return 0;
}

int cmd_diff(const char* argv0, int argc, char** argv) {
  if (argc < 2) return usage(argv0, 2);
  double tol = 0.0;
  bool include_volatile = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tol") == 0 && i + 1 < argc) {
      if (!parse_tol(argv0, argv[++i], tol)) return 2;
    } else if (std::strcmp(argv[i], "--all") == 0) {
      include_volatile = true;
    } else {
      return usage(argv0, 2);
    }
  }
  ptb::StatsDump a, b;
  if (!load_dump(argv0, argv[0], a) || !load_dump(argv0, argv[1], b)) {
    return 1;
  }
  if (a.config_fingerprint != b.config_fingerprint) {
    std::printf("note: config fingerprints differ (%016llx vs %016llx) — "
                "comparing runs of different configurations\n",
                static_cast<unsigned long long>(a.config_fingerprint),
                static_cast<unsigned long long>(b.config_fingerprint));
  }
  const auto entries = ptb::diff_stats(a, b, tol, include_volatile);
  if (entries.empty()) {
    std::printf("identical: no stats differ (tol=%g)\n", tol);
    return 0;
  }
  print_diff_entries(entries);
  std::printf("%zu stat(s) differ (tol=%g)\n", entries.size(), tol);
  return 1;
}

int cmd_regress(const char* argv0, int argc, char** argv) {
  if (argc < 2) return usage(argv0, 2);
  double tol = 0.02;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tol") == 0 && i + 1 < argc) {
      if (!parse_tol(argv0, argv[++i], tol)) return 2;
    } else {
      return usage(argv0, 2);
    }
  }
  ptb::StatsDump fresh, golden;
  if (!load_dump(argv0, argv[0], fresh) ||
      !load_dump(argv0, argv[1], golden)) {
    return 1;
  }
  int failures = 0;
  if (fresh.config_fingerprint != golden.config_fingerprint) {
    std::fprintf(stderr,
                 "FAIL: config fingerprint %016llx does not match golden "
                 "%016llx — regenerate the golden if the configuration "
                 "change is intentional\n",
                 static_cast<unsigned long long>(fresh.config_fingerprint),
                 static_cast<unsigned long long>(golden.config_fingerprint));
    ++failures;
  }
  // diff_stats(fresh, golden): only_in_b = stat the golden has but the new
  // run lost (a regression); only_in_a = newly added instrumentation (fine).
  for (const auto& e : ptb::diff_stats(fresh, golden, tol, false)) {
    if (e.only_in_a) {
      std::printf("warn: '%s' is new (absent from golden)\n",
                  e.name.c_str());
      continue;
    }
    if (e.only_in_b) {
      std::fprintf(stderr, "FAIL: golden stat '%s' missing from new run\n",
                   e.name.c_str());
    } else {
      std::fprintf(stderr,
                   "FAIL: '%s' drifted: new=%.17g golden=%.17g "
                   "(rel=%.3e > tol=%g)\n",
                   e.name.c_str(), e.a, e.b, e.rel, tol);
    }
    ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr, "%d regression(s) against '%s'\n", failures,
                 argv[1]);
    return 1;
  }
  std::printf("ok: within tol=%g of golden '%s'\n", tol, argv[1]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                    std::strcmp(argv[1], "-h") == 0)) {
    return usage(argv[0], 0);
  }
  if (argc < 3) return usage(argv[0], 2);
  const std::string cmd = argv[1];
  if (cmd == "dump") return cmd_dump(argv[0], argc - 2, argv + 2);
  if (cmd == "diff") return cmd_diff(argv[0], argc - 2, argv + 2);
  if (cmd == "regress") return cmd_regress(argv[0], argc - 2, argv + 2);
  std::fprintf(stderr, "%s: unknown command '%s'\n", argv[0], cmd.c_str());
  return usage(argv[0], 2);
}

#include "lint/lex.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace ptblint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-char operators lexed as one token, longest match first.
constexpr const char* kOps3[] = {"<<=", ">>=", "...", "->*"};
constexpr const char* kOps2[] = {"::", "->", "++", "--", "<<", ">>", "<=",
                                 ">=", "==", "!=", "&&", "||", "+=", "-=",
                                 "*=", "/=", "%=", "&=", "|=", "^="};

// Parses "ptb-lint: directive(args)" or "ptb-lint: directive" out of a
// comment body; also the legacy "lint:allowed-wallclock".
bool parse_marker(std::string_view body, Marker& m) {
  const std::size_t legacy = body.find("lint:allowed-wallclock");
  const std::size_t tag = body.find("ptb-lint:");
  if (tag == std::string_view::npos) {
    if (legacy == std::string_view::npos) return false;
    m.directive = "allow";
    m.args = "wallclock";
    return true;
  }
  std::size_t i = tag + 9;
  while (i < body.size() && body[i] == ' ') ++i;
  std::size_t d0 = i;
  while (i < body.size() && (ident_char(body[i]) || body[i] == '-')) ++i;
  if (i == d0) return false;
  m.directive.assign(body.substr(d0, i - d0));
  m.args.clear();
  while (i < body.size() && body[i] == ' ') ++i;
  if (i < body.size() && body[i] == '(') {
    const std::size_t close = body.find(')', i);
    if (close != std::string_view::npos) {
      m.args.assign(body.substr(i + 1, close - i - 1));
    }
  }
  return true;
}

void note_marker(SourceFile& out, const Marker& m, int next_code_line_hint) {
  out.markers.push_back(m);
  if (m.directive != "allow") return;
  // allow(a, b) suppresses checks a and b; allow() suppresses everything.
  const int line = m.own_line ? next_code_line_hint : m.line;
  std::string args = m.args;
  if (args.empty()) {
    out.allow_lines[""].insert(line);
    return;
  }
  std::size_t i = 0;
  while (i < args.size()) {
    while (i < args.size() && (args[i] == ' ' || args[i] == ',')) ++i;
    std::size_t a0 = i;
    while (i < args.size() && args[i] != ',' && args[i] != ' ') ++i;
    if (i > a0) out.allow_lines[args.substr(a0, i - a0)].insert(line);
  }
}

}  // namespace

bool SourceFile::allowed(std::string_view check, int line) const {
  const auto hit = [&](std::string_view key) {
    const auto it = allow_lines.find(key);
    return it != allow_lines.end() && it->second.count(line) != 0;
  };
  return hit(check) || hit("");
}

bool SourceFile::has_marker(std::string_view directive) const {
  for (const Marker& m : markers) {
    if (m.directive == directive) return true;
  }
  return false;
}

void lex(std::string_view s, SourceFile& out) {
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = s.size();
  bool line_has_code = false;
  // Own-line allow markers bind to the next line that carries code (the
  // NOLINTNEXTLINE convention); they queue here until that line appears.
  std::vector<Marker> pending_allows;

  const auto on_code = [&]() {
    if (!pending_allows.empty()) {
      for (const Marker& m : pending_allows) note_marker(out, m, line);
      pending_allows.clear();
    }
    line_has_code = true;
  };

  const auto handle_comment = [&](std::string_view body, int at_line,
                                  bool own) {
    Marker m;
    if (!parse_marker(body, m)) return;
    m.line = at_line;
    m.own_line = own;
    if (m.directive == "allow" && own) {
      pending_allows.push_back(m);  // binds to the next code line
    } else {
      note_marker(out, m, at_line);
    }
  };

  const auto expand_allow_blocks = [&]() {
    // allow-begin(checks) ... allow-end suppresses every line in between
    // (inclusive), for multi-line justified exemptions like a switch whose
    // every arm touches the exempted state.
    const std::size_t count = out.markers.size();
    for (std::size_t b = 0; b < count; ++b) {
      if (out.markers[b].directive != "allow-begin") continue;
      int end_line = out.markers[b].line;
      for (std::size_t e = b + 1; e < count; ++e) {
        if (out.markers[e].directive == "allow-end" &&
            out.markers[e].line >= end_line) {
          end_line = out.markers[e].line;
          break;
        }
      }
      Marker span = out.markers[b];
      span.directive = "allow";
      span.own_line = false;
      for (int l = out.markers[b].line; l <= end_line; ++l) {
        span.line = l;
        note_marker(out, span, l);
      }
    }
  };

  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      line_has_code = false;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Line continuation.
    if (c == '\\' && i + 1 < n && (s[i + 1] == '\n' || s[i + 1] == '\r')) {
      i += (i + 2 <= n && s[i + 1] == '\r' && i + 2 < n && s[i + 2] == '\n')
               ? 3
               : 2;
      ++line;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      std::size_t e = i + 2;
      while (e < n && s[e] != '\n') ++e;
      handle_comment(s.substr(i + 2, e - i - 2), line, !line_has_code);
      i = e;
      continue;
    }
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      const int at = line;
      const bool own = !line_has_code;
      std::size_t e = i + 2;
      while (e + 1 < n && !(s[e] == '*' && s[e + 1] == '/')) {
        if (s[e] == '\n') ++line;
        ++e;
      }
      handle_comment(s.substr(i + 2, e - i - 2), at, own);
      i = (e + 1 < n) ? e + 2 : n;
      continue;
    }
    // Preprocessor directives: consume the (possibly continued) line.
    // #include/#define bodies never feed the checks (call sites do).
    if (c == '#' && !line_has_code) {
      std::size_t e = i;
      while (e < n && s[e] != '\n') {
        if (s[e] == '\\' && e + 1 < n && s[e + 1] == '\n') {
          ++line;
          e += 2;
          continue;
        }
        ++e;
      }
      i = e;
      continue;
    }
    // String literals (incl. raw strings; prefix idents were already
    // emitted as tokens and are harmless).
    if (c == '"') {
      on_code();
      const bool raw = !out.tokens.empty() &&
                       out.tokens.back().kind == Tok::kIdent &&
                       (out.tokens.back().text == "R" ||
                        (out.tokens.back().text.size() <= 3 &&
                         out.tokens.back().text.back() == 'R'));
      std::size_t e = i + 1;
      std::string text;
      if (raw) {
        std::size_t d = e;
        while (d < n && s[d] != '(') ++d;
        const std::string delim =
            ")" + std::string(s.substr(e, d - e)) + "\"";
        const std::size_t close = s.find(delim, d);
        const std::size_t end =
            close == std::string_view::npos ? n : close + delim.size();
        const std::size_t body = d < n ? d + 1 : n;
        text.assign(s.substr(body, std::min(close, n) - body));
        const int start_line = line;
        for (std::size_t k = i; k < end && k < n; ++k) {
          if (s[k] == '\n') ++line;
        }
        out.tokens.push_back({Tok::kString, std::move(text), start_line});
        i = end;
        continue;
      } else {
        while (e < n && s[e] != '"' && s[e] != '\n') {
          if (s[e] == '\\' && e + 1 < n) ++e;
          ++e;
        }
        text.assign(s.substr(i + 1, e - i - 1));
        if (e < n && s[e] == '"') ++e;
      }
      out.tokens.push_back({Tok::kString, std::move(text), line});
      i = e;
      continue;
    }
    if (c == '\'' && !(i > 0 && ident_char(s[i - 1]))) {
      // Char literal (digit separators never reach here: the number lexer
      // consumes them).
      on_code();
      std::size_t e = i + 1;
      while (e < n && s[e] != '\'' && s[e] != '\n') {
        if (s[e] == '\\' && e + 1 < n) ++e;
        ++e;
      }
      out.tokens.push_back(
          {Tok::kChar, std::string(s.substr(i + 1, e - i - 1)), line});
      i = (e < n && s[e] == '\'') ? e + 1 : e;
      continue;
    }
    if (ident_start(c)) {
      on_code();
      std::size_t e = i + 1;
      while (e < n && ident_char(s[e])) ++e;
      out.tokens.push_back(
          {Tok::kIdent, std::string(s.substr(i, e - i)), line});
      i = e;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
      on_code();
      std::size_t e = i;
      while (e < n) {
        const char d = s[e];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++e;
          continue;
        }
        if ((d == '+' || d == '-') && e > i &&
            (s[e - 1] == 'e' || s[e - 1] == 'E' || s[e - 1] == 'p' ||
             s[e - 1] == 'P')) {
          ++e;
          continue;
        }
        break;
      }
      out.tokens.push_back(
          {Tok::kNumber, std::string(s.substr(i, e - i)), line});
      i = e;
      continue;
    }
    // Punctuation: longest-match multi-char operators.
    on_code();
    std::string op(1, c);
    for (const char* cand : kOps3) {
      if (i + 3 <= n && s.substr(i, 3) == cand) {
        op = cand;
        break;
      }
    }
    if (op.size() == 1) {
      for (const char* cand : kOps2) {
        if (i + 2 <= n && s.substr(i, 2) == cand) {
          op = cand;
          break;
        }
      }
    }
    out.tokens.push_back({Tok::kPunct, op, line});
    i += op.size();
  }
  expand_allow_blocks();
}

bool lex_file(const std::string& path, const std::string& rel,
              SourceFile& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out.path = path;
  out.rel = rel;
  lex(ss.str(), out);
  return true;
}

}  // namespace ptblint

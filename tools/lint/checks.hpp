// The ptb-lint checker suite: project-contract checks that neither the
// compiler nor scripts/lint.sh's greps can express. Each checker consumes
// the token model of lex.hpp only (no clang dependency), so the whole
// binary builds with the baked-in GCC toolchain and runs on every host
// that runs the tests.
//
// Checkers (names double as marker keys for `ptb-lint: allow(<name>)`):
//   unordered-iter  hash-ordered iteration in result paths
//   fp-accum        FP reductions in the cycle loop bypassing
//                   deterministic_total()
//   wallclock       wall-clock / entropy use outside the allow-list
//   phase-purity    parallel-shard-region-reachable code touching
//                   barrier-synchronized (sequential-point) state
//   fingerprint     SimConfig fields neither hashed into the config
//                   fingerprint nor on the explicit exclusion list
//
// The contracts themselves are documented in DESIGN.md ("Static
// analysis"); the fault-injection fixtures proving each checker fires
// live in tests/lint/fixtures/.
#pragma once

#include <string>
#include <vector>

#include "lint/lex.hpp"

namespace ptblint {

struct Finding {
  std::string rel;      // file, relative to the scan root
  int line;
  std::string check;    // checker name
  std::string message;
};

struct Corpus {
  std::vector<SourceFile> files;
};

using CheckFn = void (*)(const Corpus&, std::vector<Finding>&);

struct CheckInfo {
  const char* name;
  const char* summary;
  CheckFn fn;
};

/// All registered checkers, in canonical (report) order.
const std::vector<CheckInfo>& all_checks();

}  // namespace ptblint

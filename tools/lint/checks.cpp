#include "lint/checks.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string_view>

namespace ptblint {

namespace {

using Tokens = std::vector<Token>;

bool is_keyword(std::string_view s) {
  static const std::set<std::string, std::less<>> kw = {
      "if",       "for",      "while",    "switch",   "catch",
      "return",   "sizeof",   "alignof",  "decltype", "constexpr",
      "noexcept", "new",      "delete",   "throw",    "static_assert",
      "alignas",  "typeid",   "co_await", "co_yield", "co_return"};
  return kw.count(s) != 0;
}

/// Index of the matching closer for the opener at `i` (e.g. '(' -> ')'),
/// or ts.size() when unbalanced. `>>` counts as two angle closers.
std::size_t match(const Tokens& ts, std::size_t i, std::string_view open,
                  std::string_view close) {
  int depth = 0;
  for (std::size_t k = i; k < ts.size(); ++k) {
    if (ts[k].kind != Tok::kPunct) continue;
    if (ts[k].text == open) {
      ++depth;
    } else if (ts[k].text == close) {
      if (--depth == 0) return k;
    } else if (open == "<" && ts[k].text == ">>") {
      depth -= 2;
      if (depth <= 0) return k;
    }
  }
  return ts.size();
}

bool is_punct(const Token& t, std::string_view p) {
  return t.kind == Tok::kPunct && t.text == p;
}
bool is_ident(const Token& t, std::string_view s) {
  return t.kind == Tok::kIdent && t.text == s;
}

void add(std::vector<Finding>& out, const SourceFile& f, int line,
         std::string check, std::string message) {
  if (f.allowed(check, line)) return;
  out.push_back({f.rel, line, std::move(check), std::move(message)});
}

// ---------------------------------------------------------------------------
// unordered-iter: iteration over std::unordered_{map,set} in result paths.
// Hash-table iteration order is libstdc++-internal and salt/size dependent;
// anything it feeds (stats, traces, replay order) silently loses run-to-run
// and toolchain-to-toolchain determinism. Lookups (find/count/operator[])
// are fine; range-for and .begin() are not. The container names are
// collected corpus-wide (headers declare members that .cpp files iterate).
// ---------------------------------------------------------------------------

const std::set<std::string, std::less<>> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

std::set<std::string> collect_unordered_names(const Corpus& corpus) {
  std::set<std::string> names;
  for (const SourceFile& f : corpus.files) {
    const Tokens& ts = f.tokens;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
      if (ts[i].kind != Tok::kIdent || kUnorderedTypes.count(ts[i].text) == 0)
        continue;
      if (!is_punct(ts[i + 1], "<")) continue;
      std::size_t close = match(ts, i + 1, "<", ">");
      if (close >= ts.size()) continue;
      std::size_t k = close + 1;
      while (k < ts.size() &&
             (is_punct(ts[k], "&") || is_punct(ts[k], "*") ||
              is_ident(ts[k], "const"))) {
        ++k;
      }
      if (k + 1 >= ts.size() || ts[k].kind != Tok::kIdent) continue;
      // Variable (member/local/param) declarations only — a following
      // '(' would make it a function returning the container.
      const Token& after = ts[k + 1];
      if (is_punct(after, ";") || is_punct(after, "=") ||
          is_punct(after, "{") || is_punct(after, ",") ||
          is_punct(after, ")")) {
        names.insert(ts[k].text);
      }
    }
  }
  return names;
}

void check_unordered_iter(const Corpus& corpus, std::vector<Finding>& out) {
  const std::set<std::string> names = collect_unordered_names(corpus);
  if (names.empty()) return;
  for (const SourceFile& f : corpus.files) {
    const Tokens& ts = f.tokens;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
      // Range-for whose range expression mentions an unordered container.
      if (is_ident(ts[i], "for") && is_punct(ts[i + 1], "(")) {
        const std::size_t close = match(ts, i + 1, "(", ")");
        if (close >= ts.size()) continue;
        bool classic = false;
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t k = i + 2; k < close; ++k) {
          if (ts[k].kind != Tok::kPunct) continue;
          if (ts[k].text == "(" || ts[k].text == "[") ++depth;
          else if (ts[k].text == ")" || ts[k].text == "]") --depth;
          else if (depth == 0 && ts[k].text == ";") classic = true;
          else if (depth == 0 && ts[k].text == ":" && colon == 0) colon = k;
        }
        if (classic || colon == 0) continue;
        for (std::size_t k = colon + 1; k < close; ++k) {
          if (ts[k].kind == Tok::kIdent && names.count(ts[k].text) != 0) {
            add(out, f, ts[k].line, "unordered-iter",
                "range-for over unordered container '" + ts[k].text +
                    "': hash-table order is not deterministic across "
                    "runs/toolchains; iterate a sorted copy or an ordered "
                    "container in result paths");
            break;
          }
        }
      }
      // Explicit iterator walk: var.begin() / var.cbegin().
      if (i + 3 < ts.size() && ts[i].kind == Tok::kIdent &&
          names.count(ts[i].text) != 0 &&
          (is_punct(ts[i + 1], ".") || is_punct(ts[i + 1], "->")) &&
          (is_ident(ts[i + 2], "begin") || is_ident(ts[i + 2], "cbegin")) &&
          is_punct(ts[i + 3], "(")) {
        add(out, f, ts[i].line, "unordered-iter",
            "iterator walk over unordered container '" + ts[i].text +
                "' (.begin()): hash-table order is not deterministic; "
                "find()/count() lookups are fine, ordered traversal is not");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// fp-accum: scalar floating-point reduction loops in cycle-loop files
// (marked `ptb-lint: cycle-loop-file`). Cross-core reductions there must go
// through deterministic_total() (common/deterministic.hpp) so the result is
// independent of shard partitioning; an ad-hoc `sum += arr[i]` loop fixes
// one association order lexically today but invites a parallel-friendly
// "optimization" tomorrow. Indexed targets (per-core state like acc[i])
// are exempt — they are element-wise updates, not reductions.
// ---------------------------------------------------------------------------

std::set<std::string> collect_double_names(const Corpus& corpus) {
  std::set<std::string> names;
  for (const SourceFile& f : corpus.files) {
    const Tokens& ts = f.tokens;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
      if (!is_ident(ts[i], "double") && !is_ident(ts[i], "float")) continue;
      std::size_t k = i + 1;
      while (k < ts.size() &&
             (is_punct(ts[k], "&") || is_punct(ts[k], "*") ||
              is_ident(ts[k], "const"))) {
        ++k;
      }
      if (k + 1 >= ts.size() || ts[k].kind != Tok::kIdent) continue;
      const Token& after = ts[k + 1];
      if (is_punct(after, ";") || is_punct(after, "=") ||
          is_punct(after, "{") || is_punct(after, ",") ||
          is_punct(after, ")")) {
        names.insert(ts[k].text);
      }
    }
  }
  return names;
}

void scan_loop_body(const SourceFile& f, const std::set<std::string>& doubles,
                    std::size_t begin, std::size_t end,
                    std::vector<Finding>& out) {
  const Tokens& ts = f.tokens;
  for (std::size_t k = begin; k < end; ++k) {
    if (!is_punct(ts[k], "+=") || k == begin) continue;
    const Token& target = ts[k - 1];
    if (target.kind != Tok::kIdent || doubles.count(target.text) == 0)
      continue;
    // RHS up to ';': a subscripted element read marks an element-indexed
    // reduction (the shape deterministic_total exists for).
    bool indexed_rhs = false;
    for (std::size_t r = k + 1; r < end && !is_punct(ts[r], ";"); ++r) {
      if (ts[r].kind == Tok::kIdent && r + 1 < end &&
          is_punct(ts[r + 1], "[")) {
        indexed_rhs = true;
        break;
      }
    }
    if (!indexed_rhs) continue;
    add(out, f, target.line, "fp-accum",
        "floating-point reduction '" + target.text +
            " += ...[i]' inside a loop in a cycle-loop file: route "
            "cross-core sums through deterministic_total() so the result "
            "is independent of shard partitioning");
  }
}

void check_fp_accum(const Corpus& corpus, std::vector<Finding>& out) {
  const std::set<std::string> doubles = collect_double_names(corpus);
  for (const SourceFile& f : corpus.files) {
    if (!f.has_marker("cycle-loop-file")) continue;
    const Tokens& ts = f.tokens;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
      if ((!is_ident(ts[i], "for") && !is_ident(ts[i], "while")) ||
          !is_punct(ts[i + 1], "(")) {
        continue;
      }
      const std::size_t close = match(ts, i + 1, "(", ")");
      if (close + 1 >= ts.size()) continue;
      std::size_t body_end;
      if (is_punct(ts[close + 1], "{")) {
        body_end = match(ts, close + 1, "{", "}");
      } else {
        body_end = close + 1;
        while (body_end < ts.size() && !is_punct(ts[body_end], ";"))
          ++body_end;
      }
      if (body_end >= ts.size()) continue;
      scan_loop_body(f, doubles, close + 1, body_end, out);
    }
  }
}

// ---------------------------------------------------------------------------
// wallclock: wall-clock and entropy sources anywhere in the scanned tree.
// Simulation state may only advance on simulated time (Cycle) and the
// seeded Rng; host time/entropy leaking in destroys replayability. The
// self-profiler's steady_clock use is explicitly allow-marked at its one
// declaration site. Token-exact, so `steady_state` or `fetch_time` never
// false-positive the way a substring grep can.
// ---------------------------------------------------------------------------

void check_wallclock(const Corpus& corpus, std::vector<Finding>& out) {
  static const std::set<std::string, std::less<>> kBannedTypes = {
      "high_resolution_clock", "system_clock", "steady_clock",
      "random_device"};
  static const std::set<std::string, std::less<>> kBannedCalls = {
      "getenv",       "rand",          "srand",        "time",
      "clock",        "gettimeofday",  "clock_gettime", "timespec_get",
      "mt19937",      "mt19937_64",    "localtime",    "gmtime"};
  for (const SourceFile& f : corpus.files) {
    const Tokens& ts = f.tokens;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].kind != Tok::kIdent) continue;
      if (kBannedTypes.count(ts[i].text) != 0) {
        add(out, f, ts[i].line, "wallclock",
            "'" + ts[i].text +
                "' is a host wall-clock/entropy source: simulation state "
                "must advance on Cycle and the seeded Rng only");
        continue;
      }
      if (kBannedCalls.count(ts[i].text) == 0) continue;
      if (i + 1 >= ts.size() || !is_punct(ts[i + 1], "(")) continue;
      // Member calls (r.time(), obj->clock()) are the project's own API,
      // not libc; qualified ::time / std::time still count.
      if (i > 0 && (is_punct(ts[i - 1], ".") || is_punct(ts[i - 1], "->")))
        continue;
      // Declarations of the project's own members that happen to share a
      // libc name (`double time() const`): the preceding token is a type
      // identifier, never so for a call (`= time(`, `::time(`, `, time(`).
      if (i > 0 && ts[i - 1].kind == Tok::kIdent &&
          !is_keyword(ts[i - 1].text)) {
        continue;
      }
      add(out, f, ts[i].line, "wallclock",
          "call to '" + ts[i].text +
              "': host time/entropy must not reach simulation or results "
              "(use Cycle / the seeded Rng)");
    }
  }
}

// ---------------------------------------------------------------------------
// phase-purity: the DESIGN.md phase contract, lexically enforced. Code
// between `ptb-lint: parallel-region-begin(R)` / `parallel-region-end(R)`
// markers runs on shard workers; it — and every function lexically
// reachable from it through the corpus call graph — must not call
// sequential-point API (register_stats, stage_flush, stage_begin,
// resolve_deferred) or touch barrier-synchronized members (mem_, sync_,
// thrifty_, meeting_). Guarded exceptions carry `allow(phase-purity)`
// markers whose comments state the guard (e.g. sync_pending() cores are
// gated in the sequential pre-pass).
// ---------------------------------------------------------------------------

const std::set<std::string, std::less<>> kDenyCalls = {
    "register_stats", "stage_flush", "stage_begin", "resolve_deferred"};
const std::set<std::string, std::less<>> kDenyReceivers = {
    "mem_", "sync_", "thrifty_", "meeting_"};
// The deny is about *mutable* shared state; SyncState's address-layout API
// is a pure function of the id (fixed at construction), so the workload
// generators may compute lock/barrier addresses from any phase.
const std::set<std::string, std::less<>> kImmutableMethods = {
    "lock_addr", "barrier_addr", "barrier_sense_addr"};
// Names never traversed by the reachability walk: smart-pointer/container
// accessors the corpus also happens to define somewhere (x.get() must not
// drag BaseRunCache::get — and through it the whole experiment driver —
// into the "reachable from a shard" set). A deny hit *inside* one of these
// would be caught by that function's own region if it had one; the cost of
// the stoplist is only missed transitive edges through these names.
const std::set<std::string, std::less<>> kGraphStopNames = {
    "get",   "find",  "run",   "add",   "insert", "erase", "begin",
    "end",   "size",  "empty", "clear", "count",  "at",    "front",
    "back",  "top",   "pop",   "push",  "reset",  "data",  "value",
    "first", "second"};

struct FnDef {
  const SourceFile* file;
  std::size_t body_begin;  // token index just after '{'
  std::size_t body_end;    // token index of matching '}'
};

// Lexical function-definition extraction: `name ( ... ) [cv] {`.
// Constructors (mem-init lists) and lambdas are deliberately skipped —
// missing graph edges only weaken transitive findings, never add noise.
std::map<std::string, std::vector<FnDef>> build_defs(const Corpus& corpus) {
  std::map<std::string, std::vector<FnDef>> defs;
  for (const SourceFile& f : corpus.files) {
    const Tokens& ts = f.tokens;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
      if (ts[i].kind != Tok::kIdent || is_keyword(ts[i].text)) continue;
      if (!is_punct(ts[i + 1], "(")) continue;
      if (i > 0 && (is_punct(ts[i - 1], ".") || is_punct(ts[i - 1], "->")))
        continue;  // member call expression, not a definition
      const std::size_t close = match(ts, i + 1, "(", ")");
      if (close >= ts.size()) continue;
      std::size_t k = close + 1;
      while (k < ts.size() && ts[k].kind == Tok::kIdent &&
             (ts[k].text == "const" || ts[k].text == "noexcept" ||
              ts[k].text == "override" || ts[k].text == "final")) {
        ++k;
      }
      if (k >= ts.size() || !is_punct(ts[k], "{")) continue;
      const std::size_t end = match(ts, k, "{", "}");
      if (end >= ts.size()) continue;
      defs[ts[i].text].push_back({&f, k + 1, end});
    }
  }
  return defs;
}

struct DenySite {
  const SourceFile* file;
  int line;
  std::string what;  // human-readable description of the deny hit
};

void scan_range_for_denies(const SourceFile& f, std::size_t begin,
                           std::size_t end, std::vector<DenySite>& hits,
                           std::set<std::string>& calls) {
  const Tokens& ts = f.tokens;
  for (std::size_t i = begin; i < end; ++i) {
    if (ts[i].kind != Tok::kIdent) continue;
    if (i + 1 < end && is_punct(ts[i + 1], "(") && !is_keyword(ts[i].text)) {
      calls.insert(ts[i].text);
      if (kDenyCalls.count(ts[i].text) != 0) {
        hits.push_back({&f, ts[i].line,
                        "calls sequential-point API '" + ts[i].text + "()'"});
      }
    }
    if (kDenyReceivers.count(ts[i].text) != 0 && i + 1 < end &&
        (is_punct(ts[i + 1], ".") || is_punct(ts[i + 1], "->"))) {
      if (i + 2 < end && ts[i + 2].kind == Tok::kIdent &&
          kImmutableMethods.count(ts[i + 2].text) != 0) {
        continue;  // immutable address-layout query, phase-safe
      }
      hits.push_back({&f, ts[i].line,
                      "touches barrier-synchronized state '" + ts[i].text +
                          "'"});
    }
  }
}

void check_phase_purity(const Corpus& corpus, std::vector<Finding>& out) {
  // 1. Region token ranges from the paired markers.
  struct Region {
    const SourceFile* file;
    std::string name;
    int begin_line, end_line;
  };
  std::vector<Region> regions;
  for (const SourceFile& f : corpus.files) {
    for (const Marker& m : f.markers) {
      if (m.directive != "parallel-region-begin") continue;
      int end_line = 1 << 30;  // unterminated region extends to EOF
      for (const Marker& e : f.markers) {
        if (e.directive == "parallel-region-end" && e.args == m.args &&
            e.line > m.line && e.line < end_line) {
          end_line = e.line;
        }
      }
      regions.push_back({&f, m.args, m.line, end_line});
    }
  }
  if (regions.empty()) return;

  const std::map<std::string, std::vector<FnDef>> defs = build_defs(corpus);

  // 2. Direct scan of each region + seed the reachability worklist.
  std::vector<DenySite> direct;
  std::set<std::string> seeds;
  for (const Region& r : regions) {
    const Tokens& ts = r.file->tokens;
    std::size_t begin = ts.size(), end = ts.size();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].line >= r.begin_line && begin == ts.size()) begin = i;
      if (ts[i].line > r.end_line) {
        end = i;
        break;
      }
    }
    std::vector<DenySite> hits;
    scan_range_for_denies(*r.file, begin, end, hits, seeds);
    for (DenySite& h : hits) {
      add(out, *h.file, h.line, "phase-purity",
          "parallel region '" + r.name + "' " + h.what +
              "; only the sequential point may do this (DESIGN.md phase "
              "contract)");
    }
  }

  // 3. BFS through the corpus call graph; every function reachable from a
  // region by name is held to the same contract. parent[] remembers one
  // call chain for the report.
  std::map<std::string, std::string> parent;
  std::vector<std::string> work;
  for (const std::string& s : seeds) {
    if (defs.count(s) != 0 && kGraphStopNames.count(s) == 0) {
      parent[s] = "";
      work.push_back(s);
    }
  }
  while (!work.empty()) {
    const std::string name = work.back();
    work.pop_back();
    const auto it = defs.find(name);
    if (it == defs.end()) continue;
    for (const FnDef& d : it->second) {
      std::vector<DenySite> hits;
      std::set<std::string> calls;
      scan_range_for_denies(*d.file, d.body_begin, d.body_end, hits, calls);
      std::string chain = name;
      for (auto p = parent.find(name);
           p != parent.end() && !p->second.empty();
           p = parent.find(p->second)) {
        chain = p->second + " -> " + chain;
      }
      for (DenySite& h : hits) {
        add(out, *h.file, h.line, "phase-purity",
            "'" + name + "' (reachable from a parallel shard region via " +
                chain + ") " + h.what +
                "; only the sequential point may do this");
      }
      for (const std::string& c : calls) {
        if (parent.count(c) == 0 && defs.count(c) != 0 &&
            kGraphStopNames.count(c) == 0) {
          parent[c] = name;
          work.push_back(c);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// fingerprint: every SimConfig leaf field must either feed the FNV stream
// of machine_fingerprint/config_fingerprint or appear on the explicit
// `ptb-lint: fingerprint-exclude(...)` list next to those functions — and
// the exclusion list may not carry stale entries. This turns "we know
// audit_level is observe-only" from tribal knowledge into a checked
// invariant: adding a SimConfig field without deciding its fingerprint
// status fails the lint.
// ---------------------------------------------------------------------------

struct FieldDef {
  std::string name;
  std::string type;
  int line;  // declaration line, for reporting
};

struct StructDef {
  const SourceFile* file = nullptr;
  std::vector<FieldDef> fields;
  int line = 0;
};

std::map<std::string, StructDef> parse_structs(const SourceFile& f) {
  std::map<std::string, StructDef> structs;
  const Tokens& ts = f.tokens;
  for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
    if (!is_ident(ts[i], "struct") || ts[i + 1].kind != Tok::kIdent ||
        !is_punct(ts[i + 2], "{")) {
      continue;
    }
    StructDef sd;
    sd.file = &f;
    sd.line = ts[i].line;
    const std::size_t end = match(ts, i + 2, "{", "}");
    if (end >= ts.size()) continue;
    std::size_t stmt = i + 3;
    int depth = 0;
    bool has_paren = false;
    std::size_t first_init = 0;  // first top-level '=' or '{' in the stmt
    for (std::size_t k = i + 3; k < end; ++k) {
      if (is_punct(ts[k], "(") || is_punct(ts[k], "[")) {
        ++depth;
        if (ts[k].text == "(") has_paren = true;
      } else if (is_punct(ts[k], ")") || is_punct(ts[k], "]")) {
        --depth;
      } else if (depth == 0 && first_init == 0 &&
                 (is_punct(ts[k], "=") || is_punct(ts[k], "{"))) {
        first_init = k;
      }
      if (is_punct(ts[k], "{") && depth == 0 && first_init == k) {
        // brace initializer: skip to its close so inner ';' (lambdas
        // don't appear in configs) cannot split the statement
        const std::size_t bend = match(ts, k, "{", "}");
        if (bend < end) k = bend;
      }
      if (!(depth == 0 && is_punct(ts[k], ";"))) continue;
      // Statement [stmt, k): a data member iff no parens and it has a
      // declarator identifier.
      if (!has_paren && k > stmt) {
        const std::size_t name_at = first_init != 0 ? first_init : k;
        if (name_at > stmt && ts[name_at - 1].kind == Tok::kIdent &&
            name_at - 1 > stmt && ts[name_at - 2].kind == Tok::kIdent) {
          sd.fields.push_back({ts[name_at - 1].text, ts[name_at - 2].text,
                               ts[name_at - 1].line});
        }
      }
      stmt = k + 1;
      has_paren = false;
      first_init = 0;
    }
    structs[ts[i + 1].text] = std::move(sd);
  }
  return structs;
}

struct Leaf {
  std::string path;        // dotted path from SimConfig
  const SourceFile* file;  // declaration site, for reporting
  int line;
};

void expand_leaves(const std::map<std::string, StructDef>& structs,
                   const StructDef& sd, const std::string& prefix, int depth,
                   std::vector<Leaf>& leaves) {
  if (depth > 4) return;
  for (const FieldDef& fd : sd.fields) {
    const auto it = structs.find(fd.type);
    if (it != structs.end()) {
      expand_leaves(structs, it->second, prefix + fd.name + ".", depth + 1,
                    leaves);
    } else {
      leaves.push_back({prefix + fd.name, sd.file, fd.line});
    }
  }
}

bool has_seq(const Tokens& ts, std::size_t begin, std::size_t end,
             const std::vector<std::string>& seq) {
  for (std::size_t i = begin; i + seq.size() <= end; ++i) {
    bool ok = true;
    for (std::size_t k = 0; k < seq.size(); ++k) {
      if (ts[i + k].text != seq[k]) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

void check_fingerprint(const Corpus& corpus, std::vector<Finding>& out) {
  // Locate SimConfig (and the structs it nests) and the fingerprint
  // function bodies anywhere in the corpus.
  std::map<std::string, StructDef> structs;
  for (const SourceFile& f : corpus.files) {
    for (auto& [name, sd] : parse_structs(f)) {
      structs.emplace(name, std::move(sd));
    }
  }
  const auto sim = structs.find("SimConfig");
  if (sim == structs.end()) return;

  const std::map<std::string, std::vector<FnDef>> defs = build_defs(corpus);
  std::vector<FnDef> bodies;
  for (const char* fn : {"machine_fingerprint", "config_fingerprint"}) {
    const auto it = defs.find(fn);
    if (it == defs.end()) continue;
    bodies.insert(bodies.end(), it->second.begin(), it->second.end());
  }
  if (bodies.empty()) return;

  std::vector<Leaf> leaves;
  expand_leaves(structs, sim->second, "", 0, leaves);

  // Exclusion list: union of fingerprint-exclude(...) markers, with the
  // marker location kept for stale-entry reports.
  std::vector<std::pair<std::string, std::pair<const SourceFile*, int>>>
      exclusions;
  for (const SourceFile& f : corpus.files) {
    for (const Marker& m : f.markers) {
      if (m.directive != "fingerprint-exclude") continue;
      std::size_t i = 0;
      while (i < m.args.size()) {
        while (i < m.args.size() && (m.args[i] == ' ' || m.args[i] == ','))
          ++i;
        std::size_t a0 = i;
        while (i < m.args.size() && m.args[i] != ',' && m.args[i] != ' ')
          ++i;
        if (i > a0)
          exclusions.push_back({m.args.substr(a0, i - a0), {&f, m.line}});
      }
    }
  }

  const auto covered = [&](const std::string& leaf) {
    std::vector<std::string> path;  // split on '.'
    std::size_t p = 0;
    while (p <= leaf.size()) {
      const std::size_t dot = leaf.find('.', p);
      path.push_back(leaf.substr(p, dot - p));
      if (dot == std::string::npos) break;
      p = dot + 1;
    }
    std::vector<std::string> direct = {"cfg"};
    for (const std::string& seg : path) {
      direct.push_back(".");
      direct.push_back(seg);
    }
    for (const FnDef& b : bodies) {
      if (has_seq(b.file->tokens, b.body_begin, b.body_end, direct))
        return true;
      // Pointer-loop form: `&cfg.sub` taken into a loop variable that is
      // dereferenced as `->leaf` (the l1i/l1d CacheConfig pattern).
      if (path.size() == 2 &&
          has_seq(b.file->tokens, b.body_begin, b.body_end,
                  {"&", "cfg", ".", path[0]}) &&
          has_seq(b.file->tokens, b.body_begin, b.body_end,
                  {"->", path[1]})) {
        return true;
      }
    }
    return false;
  };

  const auto excluded = [&](const std::string& leaf) {
    for (const auto& [entry, where] : exclusions) {
      if (leaf == entry ||
          (leaf.size() > entry.size() && leaf.compare(0, entry.size(), entry) == 0 &&
           leaf[entry.size()] == '.')) {
        return true;
      }
    }
    return false;
  };

  std::set<std::string> used_entries;
  for (const Leaf& lf : leaves) {
    const bool cov = covered(lf.path);
    if (!cov && !excluded(lf.path)) {
      // Report at the field's declaration: that is where the decision to
      // hash or exclude the new knob has to be recorded.
      add(out, *lf.file, lf.line, "fingerprint",
          "SimConfig field '" + lf.path +
              "' is neither mixed into machine_/config_fingerprint nor on "
              "the fingerprint-exclude list: decide whether it can change "
              "results and record the decision");
    }
    if (!cov) {
      for (const auto& [entry, where] : exclusions) {
        if (lf.path == entry ||
            (lf.path.size() > entry.size() &&
             lf.path.compare(0, entry.size(), entry) == 0 &&
             lf.path[entry.size()] == '.')) {
          used_entries.insert(entry);
        }
      }
    }
  }
  for (const auto& [entry, where] : exclusions) {
    if (used_entries.count(entry) != 0) continue;
    add(out, *where.first, where.second, "fingerprint",
        "stale fingerprint-exclude entry '" + entry +
            "': it matches no unhashed SimConfig field (remove it, or the "
            "field it once named)");
  }
}

}  // namespace

const std::vector<CheckInfo>& all_checks() {
  static const std::vector<CheckInfo> checks = {
      {"unordered-iter",
       "hash-ordered container iteration in result paths",
       &check_unordered_iter},
      {"fp-accum",
       "cycle-loop FP reductions bypassing deterministic_total()",
       &check_fp_accum},
      {"wallclock", "host wall-clock / entropy sources",
       &check_wallclock},
      {"phase-purity",
       "parallel-shard-reachable code touching sequential-point state",
       &check_phase_purity},
      {"fingerprint",
       "SimConfig fields missing from the config fingerprint",
       &check_fingerprint},
  };
  return checks;
}

}  // namespace ptblint

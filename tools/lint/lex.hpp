// Tokenizer + source model for ptb-lint (tools/ptb_lint.cpp).
//
// ptb-lint was specified as a clang-tooling checker suite, but the
// canonical build container (and the GCC-only CI runner) has no clang
// development packages, and a checker that silently skips on exactly the
// hosts that run the tests is worth little. So the frontend is a small,
// dependency-free C++ lexer with just enough structure recognition
// (scopes, declarations, loops, call sites, structured comment markers)
// for the contract checks in checks.hpp — the same trade gem5's
// style-checker plane makes. The checker interface consumes this token
// model only, so a clang-AST frontend can replace it on hosts that have
// one without touching the checks.
//
// What the lexer understands that grep cannot:
//   - comments and string literals (no false hits inside either),
//   - raw strings, char literals, digit separators, line continuations,
//   - multi-char operators (`+=`, `->`, `::`, ...) as single tokens,
//   - structured `ptb-lint:` markers with own-line-applies-to-next-line
//     semantics (the NOLINTNEXTLINE convention).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace ptblint {

enum class Tok : unsigned char {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (int/float/hex, digit separators)
  kString,  // "..." and R"(...)" (text excludes quotes)
  kChar,    // '...'
  kPunct,   // operators/punctuation; multi-char operators are one token
};

struct Token {
  Tok kind;
  std::string text;
  int line;  // 1-based
};

/// A structured `// ptb-lint: <directive>(<args>)` marker, or the legacy
/// `lint:allowed-wallclock` spelling (treated as allow(wallclock)).
struct Marker {
  std::string directive;  // "allow", "parallel-region-begin", ...
  std::string args;       // raw text inside the parens (may be empty)
  int line;               // line of the comment
  bool own_line;          // comment had no code before it on its line
};

struct SourceFile {
  std::string path;           // as given on the command line
  std::string rel;            // path relative to the scan root ('/'-sep)
  std::vector<Token> tokens;
  std::vector<Marker> markers;

  /// Lines suppressed for `check`: a same-line marker suppresses its own
  /// line; an own-line marker suppresses the next line that carries code.
  /// allow() with no argument suppresses every check on that line.
  bool allowed(std::string_view check, int line) const;

  /// True when the file carries `ptb-lint: <directive>` anywhere.
  bool has_marker(std::string_view directive) const;

  // Built by lex(): check name ("" = all) -> suppressed lines.
  std::map<std::string, std::set<int>, std::less<>> allow_lines;
};

/// Tokenizes `text` into `out` (path/rel are carried through for
/// reporting). Never fails: unterminated constructs lex as best-effort
/// tokens, which is fine for a linter.
void lex(std::string_view text, SourceFile& out);

/// Reads and tokenizes one file; returns false if unreadable.
bool lex_file(const std::string& path, const std::string& rel,
              SourceFile& out);

}  // namespace ptblint

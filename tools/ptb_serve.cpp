// ptb-serve: simulation-as-a-service daemon over the ptb_serve library
// (src/serve/server.hpp). See help_text.hpp kServeUsage for routes and
// flags. The process is a thin shell: strict flag parsing (every malformed
// value is a usage error, exit 2 — a daemon silently "fixing" a typoed
// port would listen somewhere the operator did not ask for), then block in
// sigwait until SIGINT/SIGTERM and shut the server down gracefully
// (running simulations finish and are persisted; queued units fail fast).
//
// This file is host-side tooling (like ptb-trace/ptb-stats): it may touch
// signals and sleep, but no simulation result ever passes through it —
// results are produced inside ptb_sim and served verbatim from the cache.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "help_text.hpp"
#include "serve/server.hpp"
#include "sim/experiment.hpp"
#include "tool_util.hpp"

namespace {

int usage(const char* argv0, int rc) {
  std::fprintf(rc == 0 ? stdout : stderr, ptb::tools::kServeUsage, argv0);
  return rc;
}

bool parse_u32_flag(const char* argv0, const char* flag, const char* value,
                    std::uint32_t min, std::uint32_t max,
                    std::uint32_t& out) {
  if (!ptb::tools::parse_u32_arg(value, out) || out < min || out > max) {
    std::fprintf(stderr, "%s: bad %s value '%s' (expected %u..%u)\n", argv0,
                 flag, value, min, max);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen = "127.0.0.1";
  std::uint32_t port = 7580;
  std::uint32_t jobs = 2;
  std::uint32_t host_tokens = 0;  // 0 = default to --jobs
  std::uint32_t queue_max = 256;
  std::uint32_t http_threads = 4;
  std::string cache_dir = ".ptb-cache";
  std::uint64_t cache_max_bytes = 0;  // 0 = unbounded
  ptb::PtbPolicy policy = ptb::PtbPolicy::kToAll;
  std::uint32_t trace_spans = 4096;     // 0 = tracing off
  std::uint32_t progress_cycles = 5000;  // 0 = no progress events
  std::string log_file;                  // "" = access log off
  ptb::serve::LogLevel log_level = ptb::serve::LogLevel::kInfo;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", argv[0],
                     arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      return usage(argv[0], 0);
    } else if (arg == "--listen") {
      const char* v = need_value();
      if (v == nullptr) return 2;
      listen = v;
      if (listen.empty()) {
        std::fprintf(stderr, "%s: bad --listen value (empty)\n", argv[0]);
        return 2;
      }
    } else if (arg == "--port") {
      const char* v = need_value();
      if (v == nullptr ||
          !parse_u32_flag(argv[0], "--port", v, 0, 65535, port)) {
        return 2;
      }
    } else if (arg == "--jobs") {
      const char* v = need_value();
      if (v == nullptr ||
          !parse_u32_flag(argv[0], "--jobs", v, 1, 4096, jobs)) {
        return 2;
      }
    } else if (arg == "--host-tokens") {
      const char* v = need_value();
      if (v == nullptr || !parse_u32_flag(argv[0], "--host-tokens", v, 1,
                                          1u << 20, host_tokens)) {
        return 2;
      }
    } else if (arg == "--queue-max") {
      const char* v = need_value();
      if (v == nullptr || !parse_u32_flag(argv[0], "--queue-max", v, 1,
                                          1u << 20, queue_max)) {
        return 2;
      }
    } else if (arg == "--http-threads") {
      const char* v = need_value();
      if (v == nullptr || !parse_u32_flag(argv[0], "--http-threads", v, 1,
                                          256, http_threads)) {
        return 2;
      }
    } else if (arg == "--cache-dir") {
      const char* v = need_value();
      if (v == nullptr) return 2;
      cache_dir = v;
      if (cache_dir.empty()) {
        std::fprintf(stderr, "%s: bad --cache-dir value (empty)\n", argv[0]);
        return 2;
      }
    } else if (arg == "--cache-max-bytes") {
      const char* v = need_value();
      if (v == nullptr) return 2;
      if (!ptb::tools::parse_u64_arg(v, cache_max_bytes)) {
        std::fprintf(stderr,
                     "%s: bad --cache-max-bytes value '%s' (expected a "
                     "byte count, 0 = unbounded)\n",
                     argv[0], v);
        return 2;
      }
    } else if (arg == "--trace-spans") {
      const char* v = need_value();
      if (v == nullptr || !parse_u32_flag(argv[0], "--trace-spans", v, 0,
                                          1u << 24, trace_spans)) {
        return 2;
      }
    } else if (arg == "--progress-cycles") {
      const char* v = need_value();
      if (v == nullptr || !parse_u32_flag(argv[0], "--progress-cycles", v, 0,
                                          1u << 30, progress_cycles)) {
        return 2;
      }
    } else if (arg == "--log-file") {
      const char* v = need_value();
      if (v == nullptr) return 2;
      log_file = v;
      if (log_file.empty()) {
        std::fprintf(stderr, "%s: bad --log-file value (empty)\n", argv[0]);
        return 2;
      }
    } else if (arg == "--log-level") {
      const char* v = need_value();
      if (v == nullptr) return 2;
      if (!ptb::serve::parse_log_level(v, log_level)) {
        std::fprintf(stderr,
                     "%s: bad --log-level value '%s' (expected error, info "
                     "or debug)\n",
                     argv[0], v);
        return 2;
      }
    } else if (arg == "--policy") {
      const char* v = need_value();
      if (v == nullptr) return 2;
      if (!ptb::serve::parse_ptb_policy(v, policy) ||
          policy == ptb::PtbPolicy::kDynamic) {
        std::fprintf(stderr,
                     "%s: bad --policy value '%s' (expected to_all or "
                     "to_one)\n",
                     argv[0], v);
        return 2;
      }
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg.c_str());
      return usage(argv[0], 2);
    }
  }
  if (host_tokens == 0) host_tokens = jobs;

  // Block the shutdown signals before any thread exists, so every thread
  // inherits the mask and sigwait below is the only consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  ptb::serve::ServiceOptions sopts;
  sopts.cache_dir = cache_dir;
  sopts.sim_workers = jobs;
  sopts.host_tokens = host_tokens;
  sopts.admission_policy = policy;
  sopts.queue_max = queue_max;
  sopts.cache_max_bytes = cache_max_bytes;
  sopts.trace_spans = trace_spans;
  sopts.progress_every_cycles = progress_cycles;
  sopts.log_file = log_file;
  sopts.log_level = log_level;

  // Warm-checkpoint images share the cache directory: every simulation
  // this daemon runs restores the post-warmup state instead of replaying
  // functional warmup, across runs and across daemon restarts.
  ptb::set_default_warm_checkpoint_dir(cache_dir);
  if (ptb::DiskRunCache* warm = ptb::default_warm_checkpoint_cache()) {
    warm->set_max_bytes(cache_max_bytes);
  }

  ptb::serve::Server server(sopts, listen,
                            static_cast<std::uint16_t>(port), http_threads);
  std::string err;
  if (!server.start(err)) {
    std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
    return 1;
  }
  // Scripts parse this line (scripts/serve_smoke.sh) — the bound port
  // matters when --port 0 asked for an ephemeral one.
  std::printf("ptb-serve: listening on %s:%u (cache %s, jobs %u, tokens "
              "%u, policy %s)\n",
              listen.c_str(), server.port(), cache_dir.c_str(), jobs,
              host_tokens, ptb::serve::ptb_policy_name(policy));
  std::fflush(stdout);

  int sig = 0;
  while (sigwait(&sigs, &sig) != 0) {
  }
  std::printf("ptb-serve: received %s, draining\n",
              sig == SIGTERM ? "SIGTERM" : "SIGINT");
  std::fflush(stdout);
  server.stop();
  std::printf("ptb-serve: shutdown complete\n");
  return 0;
}

// Shared plumbing for the ptb-* command-line tools: whole-file IO with '-'
// as stdout, and small argument-parsing helpers. Tools stay dependency-free
// (no simulation code) — keep this header that way too.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace ptb::tools {

/// Writes `text` to `path`; '-' writes to stdout. Returns false when the
/// file is not writable.
inline bool write_text(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

/// Slurps `path` into `out`; returns false when unreadable.
inline bool read_text(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, got);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

/// Strict double parse (whole string must consume); false on garbage.
inline bool parse_double_arg(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

/// Strict u64 parse; false on garbage.
inline bool parse_u64_arg(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

/// Strict unsigned parse; false on garbage.
inline bool parse_u32_arg(const char* s, std::uint32_t& out) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

}  // namespace ptb::tools

// ptb-lint: contract checks for the PTB simulator tree.
//
//   ptb-lint [--root DIR] [--checks a,b,...] [--list] [files...]
//
// With --root pointing at the repository (the default, "."), scans the
// result-path trees src/, bench/ and examples/; with --root pointing at
// any other directory (e.g. the lint fixtures), scans it recursively.
// Explicit file arguments replace the directory walk entirely.
//
// Output is one `path:line: [check] message` per finding; exit status is
// 0 (clean), 1 (findings) or 2 (usage/IO error) — the same protocol as
// scripts/lint.sh, which runs this binary as its section 4.
//
// The why and the checker matrix live in DESIGN.md ("Static analysis");
// the frontend trade-off (dependency-free lexer instead of clang-tooling,
// so the checks run on the clang-less build/CI hosts) is documented in
// tools/lint/lex.hpp.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "lint/checks.hpp"
#include "lint/lex.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h" ||
         ext == ".cxx" || ext == ".hxx";
}

void collect_dir(const fs::path& dir, const fs::path& root,
                 std::vector<std::pair<std::string, std::string>>& files) {
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec) || !lintable(it->path())) continue;
    files.push_back({it->path().string(),
                     it->path().lexically_relative(root).generic_string()});
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::set<std::string> enabled;
  std::vector<std::string> explicit_files;
  bool list_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--checks" && i + 1 < argc) {
      const std::string csv = argv[++i];
      std::size_t p = 0;
      while (p < csv.size()) {
        const std::size_t comma = csv.find(',', p);
        const std::string name = csv.substr(p, comma - p);
        if (!name.empty()) enabled.insert(name);
        if (comma == std::string::npos) break;
        p = comma + 1;
      }
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: ptb-lint [--root DIR] [--checks a,b,...] [--list] "
          "[files...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ptb-lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      explicit_files.push_back(arg);
    }
  }

  if (list_only) {
    for (const ptblint::CheckInfo& c : ptblint::all_checks()) {
      std::printf("%-16s %s\n", c.name, c.summary);
    }
    return 0;
  }
  for (const std::string& name : enabled) {
    const auto& checks = ptblint::all_checks();
    if (std::none_of(checks.begin(), checks.end(),
                     [&](const auto& c) { return name == c.name; })) {
      std::fprintf(stderr, "ptb-lint: unknown check '%s' (see --list)\n",
                   name.c_str());
      return 2;
    }
  }

  // Build the file list: explicit args win; otherwise the repo result-path
  // trees when --root looks like the repository, else the whole root.
  std::vector<std::pair<std::string, std::string>> paths;  // abs, rel
  const fs::path rootp(root);
  if (!explicit_files.empty()) {
    for (const std::string& f : explicit_files) {
      paths.push_back({f, fs::path(f).lexically_relative(rootp)
                              .generic_string()});
    }
  } else if (fs::is_directory(rootp / "src")) {
    for (const char* sub : {"src", "bench", "examples"}) {
      if (fs::is_directory(rootp / sub)) collect_dir(rootp / sub, rootp, paths);
    }
  } else if (fs::is_directory(rootp)) {
    collect_dir(rootp, rootp, paths);
  } else {
    std::fprintf(stderr, "ptb-lint: root '%s' is not a directory\n",
                 root.c_str());
    return 2;
  }
  std::sort(paths.begin(), paths.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  ptblint::Corpus corpus;
  corpus.files.reserve(paths.size());
  for (const auto& [abs, rel] : paths) {
    ptblint::SourceFile f;
    if (!ptblint::lex_file(abs, rel.empty() ? abs : rel, f)) {
      std::fprintf(stderr, "ptb-lint: cannot read '%s'\n", abs.c_str());
      return 2;
    }
    corpus.files.push_back(std::move(f));
  }

  std::vector<ptblint::Finding> findings;
  for (const ptblint::CheckInfo& c : ptblint::all_checks()) {
    if (!enabled.empty() && enabled.count(c.name) == 0) continue;
    c.fn(corpus, findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const ptblint::Finding& a, const ptblint::Finding& b) {
              if (a.rel != b.rel) return a.rel < b.rel;
              if (a.line != b.line) return a.line < b.line;
              return a.check < b.check;
            });

  for (const ptblint::Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.rel.c_str(), f.line, f.check.c_str(),
                f.message.c_str());
  }
  if (findings.empty()) {
    std::fprintf(stderr, "ptb-lint: %zu files scanned, clean\n",
                 corpus.files.size());
    return 0;
  }
  std::fprintf(stderr, "ptb-lint: %zu finding(s) in %zu files scanned\n",
               findings.size(), corpus.files.size());
  return 1;
}

// Canonical --help text for the ptb-* tools, shared between the tools and
// the help-output golden test (tests/tools/help_text_test.cpp). Keeping the
// text in one header means the binaries cannot drift from what the golden
// pins: edit here, and the test forces the edit to be deliberate.
//
// Formatting contract (the golden enforces it): lines fit in 80 columns,
// spaces only, every subcommand the tool dispatches is listed, and the
// validation behavior a user would otherwise discover by surprise — the
// trace format-version check and the stats config-fingerprint check — is
// spelled out.
#pragma once

namespace ptb::tools {

// %s is the program name (argv[0]); printed via fprintf.
inline constexpr char kTraceUsage[] =
    "usage: %s COMMAND TRACE [ARGS]\n"
    "  summary TRACE            event counts, token totals, policy "
    "residency\n"
    "  flows TRACE              per-core-pair token-flow matrix\n"
    "  dvfs TRACE               DVFS mode residency and stall windows\n"
    "  spin TRACE [--core N]    spin-phase timeline (lock vs barrier)\n"
    "  deficit TRACE            budget-deficit histogram\n"
    "  export-json TRACE OUT    Chrome trace-event / Perfetto JSON\n"
    "  export-csv TRACE OUT     flat CSV (cycle,category,event,core,arg,"
    "value)\n"
    "  serve TRACE OUT          ptb-serve span log (GET /v1/trace) to "
    "Perfetto\n"
    "                           JSON: one thread track per request trace\n"
    "TRACE is a file written by a bench binary's --trace flag (for `serve`: "
    "the\n"
    "bytes of GET /v1/trace); OUT may be '-'\n"
    "for stdout. Traces carry a format version; a trace written by a "
    "different\n"
    "(older or newer) build is rejected as unparseable rather than "
    "misread —\n"
    "re-record it with this build's bench binaries.\n"
    "exit status: 0 ok, 1 unreadable/corrupt/version-mismatched trace, "
    "2 usage.\n";

// %s is the program name (argv[0]); printed via fprintf.
inline constexpr char kStatsUsage[] =
    "usage: %s COMMAND ARGS\n"
    "  dump FILE [--json] [--no-volatile]   validate + print one dump\n"
    "  diff A B [--tol FRAC] [--all]        compare two dumps (exit 1 on "
    "any\n"
    "                                       difference beyond FRAC, default "
    "0)\n"
    "  regress NEW GOLDEN [--tol FRAC]      CI gate: NEW vs golden, "
    "default\n"
    "                                       --tol 0.02\n"
    "FILE/A/B/NEW/GOLDEN are JSON dumps from a bench binary's --stats "
    "flag.\n"
    "Every dump embeds the config fingerprint of the run that produced it:\n"
    "`diff` prints a note when the fingerprints differ (you are comparing "
    "two\n"
    "different configurations) and diffs anyway; `regress` treats a "
    "fingerprint\n"
    "mismatch as a failure — regenerate the golden when a configuration "
    "change\n"
    "is intentional. Stats present only in NEW warn (new instrumentation "
    "is\n"
    "not a regression); stats missing from NEW fail.\n"
    "exit status: 0 ok, 1 difference/regression or unreadable input, 2 "
    "usage.\n";

// %s is the program name (argv[0]); printed via fprintf.
inline constexpr char kServeUsage[] =
    "usage: %s [OPTIONS]\n"
    "  --listen ADDR    IPv4 listen address (default 127.0.0.1)\n"
    "  --port N         TCP port; 0 picks an ephemeral port (default "
    "7580)\n"
    "  --jobs N         concurrent simulation workers (default 2)\n"
    "  --host-tokens N  admission token budget balanced across tenants\n"
    "                   (default: the --jobs value)\n"
    "  --policy P       spare-token policy: to_all | to_one (default "
    "to_all)\n"
    "  --cache-dir DIR  persistent content-addressed run cache (default\n"
    "                   .ptb-cache; created if absent)\n"
    "  --cache-max-bytes N\n"
    "                   disk-cache quota in bytes; oldest published "
    "entries\n"
    "                   are evicted after each store (default 0 = "
    "unbounded)\n"
    "  --queue-max N    queued-unit cap before requests get 429 (default "
    "256)\n"
    "  --http-threads N HTTP worker threads (default 4)\n"
    "  --trace-spans N  request-span ring capacity for GET /v1/trace\n"
    "                   (default 4096; 0 disables tracing entirely)\n"
    "  --progress-cycles N\n"
    "                   simulated cycles between job progress events "
    "(default\n"
    "                   5000; 0 disables progress events)\n"
    "  --log-file PATH  structured JSON access log, one line per request\n"
    "                   ('-' = stderr; default: no access log)\n"
    "  --log-level L    access-log level: error | info | debug (default "
    "info;\n"
    "                   debug adds per-stage durations and tokens held)\n"
    "Serves POST /v1/run, POST /v1/sweep, GET /v1/jobs/{id},\n"
    "GET /v1/jobs/{id}/events (live progress stream, chunked SSE framing),\n"
    "GET /v1/results/{key}, GET /v1/trace (request-span log; ?format=json "
    "for\n"
    "Perfetto), GET /metrics (Prometheus), GET /healthz.\n"
    "Repeat requests are answered from the cache byte-identically; corrupt\n"
    "cache entries are rejected and re-simulated, never served. Simulations\n"
    "restore a warm-checkpoint image from the cache dir instead of "
    "replaying\n"
    "functional warmup whenever one exists. SIGINT/SIGTERM drain "
    "gracefully:\n"
    "running simulations finish, queued ones fail.\n"
    "exit status: 0 clean shutdown, 1 startup failure, 2 usage.\n";

}  // namespace ptb::tools

// ptb-trace: inspect a binary event trace captured with the bench
// binaries' --trace flag (or EventTrace::save from a test/example).
//
//   ptb-trace summary TRACE            counts, token totals, policy residency
//   ptb-trace flows TRACE              per-core-pair token-flow matrix
//   ptb-trace dvfs TRACE               DVFS mode residency + stall windows
//   ptb-trace spin TRACE [--core N]    spin-phase timeline (lock vs barrier)
//   ptb-trace deficit TRACE            budget-deficit histogram
//   ptb-trace export-json TRACE OUT    Chrome/Perfetto JSON (OUT '-' = stdout)
//   ptb-trace export-csv TRACE OUT     flat CSV              (OUT '-' = stdout)
//   ptb-trace serve TRACE OUT          ptb-serve span log (GET /v1/trace) ->
//                                      Perfetto JSON         (OUT '-' = stdout)
//
// Exits nonzero on an unreadable/corrupt trace or bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "help_text.hpp"
#include "tool_util.hpp"
#include "trace/analysis.hpp"
#include "trace/export.hpp"
#include "trace/serve_span.hpp"
#include "trace/trace.hpp"

namespace {

int usage(const char* argv0, int rc) {
  std::fprintf(rc == 0 ? stdout : stderr, ptb::tools::kTraceUsage, argv0);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                    std::strcmp(argv[1], "-h") == 0)) {
    return usage(argv[0], 0);
  }
  if (argc < 3) return usage(argv[0], 2);
  const std::string cmd = argv[1];
  const std::string path = argv[2];

  // The serve span log is a different binary format (PTBSPANL, not the
  // simulator's event trace): dispatch before the EventTrace parse.
  if (cmd == "serve") {
    if (argc != 4) return usage(argv[0], 2);
    ptb::ServeSpanLog log;
    if (!ptb::ServeSpanLog::load(path, log)) {
      std::fprintf(stderr,
                   "%s: cannot parse '%s' as a ptb-serve span log (fetch "
                   "one with GET /v1/trace)\n",
                   argv[0], path.c_str());
      return 1;
    }
    if (!ptb::tools::write_text(argv[3], ptb::serve_spans_chrome_json(log))) {
      std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0], argv[3]);
      return 1;
    }
    return 0;
  }

  ptb::EventTrace trace;
  if (!ptb::EventTrace::load(path, trace)) {
    std::fprintf(stderr,
                 "%s: cannot parse '%s' as a PTB event trace (corrupt, or "
                 "written by a build with a different trace format "
                 "version)\n",
                 argv[0], path.c_str());
    return 1;
  }

  if (cmd == "summary") {
    std::fputs(ptb::render_summary(trace).c_str(), stdout);
    return 0;
  }
  if (cmd == "flows") {
    std::fputs(ptb::render_flows(trace).c_str(), stdout);
    return 0;
  }
  if (cmd == "dvfs") {
    std::fputs(ptb::render_dvfs(trace).c_str(), stdout);
    return 0;
  }
  if (cmd == "spin") {
    std::uint32_t only_core = ptb::kNoCore;
    if (argc == 5 && std::strcmp(argv[3], "--core") == 0) {
      if (!ptb::tools::parse_u32_arg(argv[4], only_core)) {
        std::fprintf(stderr, "%s: bad --core value '%s'\n", argv[0],
                     argv[4]);
        return 2;
      }
    } else if (argc > 3) {
      return usage(argv[0], 2);
    }
    std::fputs(ptb::render_spin(trace, only_core).c_str(), stdout);
    return 0;
  }
  if (cmd == "deficit") {
    std::fputs(ptb::render_deficit(trace).c_str(), stdout);
    return 0;
  }
  if (cmd == "export-json" || cmd == "export-csv") {
    if (argc != 4) return usage(argv[0], 2);
    const std::string text = cmd == "export-json"
                                 ? ptb::trace_chrome_json(trace)
                                 : ptb::trace_csv(trace);
    if (!ptb::tools::write_text(argv[3], text)) {
      std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0], argv[3]);
      return 1;
    }
    return 0;
  }
  std::fprintf(stderr, "%s: unknown command '%s'\n", argv[0], cmd.c_str());
  return usage(argv[0], 2);
}

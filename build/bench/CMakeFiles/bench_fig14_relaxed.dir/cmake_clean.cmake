file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_relaxed.dir/bench_fig14_relaxed.cpp.o"
  "CMakeFiles/bench_fig14_relaxed.dir/bench_fig14_relaxed.cpp.o.d"
  "bench_fig14_relaxed"
  "bench_fig14_relaxed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_relaxed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

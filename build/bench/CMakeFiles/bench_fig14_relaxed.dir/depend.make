# Empty dependencies file for bench_fig14_relaxed.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table2_workloads.
# This may be replaced when dependencies are built.

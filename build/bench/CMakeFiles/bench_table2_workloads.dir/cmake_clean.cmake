file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_workloads.dir/bench_table2_workloads.cpp.o"
  "CMakeFiles/bench_table2_workloads.dir/bench_table2_workloads.cpp.o.d"
  "bench_table2_workloads"
  "bench_table2_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

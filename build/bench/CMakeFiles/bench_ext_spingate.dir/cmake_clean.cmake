file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_spingate.dir/bench_ext_spingate.cpp.o"
  "CMakeFiles/bench_ext_spingate.dir/bench_ext_spingate.cpp.o.d"
  "bench_ext_spingate"
  "bench_ext_spingate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_spingate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ext_spingate.
# This may be replaced when dependencies are built.

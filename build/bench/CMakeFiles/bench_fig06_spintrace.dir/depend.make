# Empty dependencies file for bench_fig06_spintrace.
# This may be replaced when dependencies are built.

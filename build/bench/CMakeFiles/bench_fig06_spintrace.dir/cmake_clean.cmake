file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_spintrace.dir/bench_fig06_spintrace.cpp.o"
  "CMakeFiles/bench_fig06_spintrace.dir/bench_fig06_spintrace.cpp.o.d"
  "bench_fig06_spintrace"
  "bench_fig06_spintrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_spintrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_toall.dir/bench_fig10_toall.cpp.o"
  "CMakeFiles/bench_fig10_toall.dir/bench_fig10_toall.cpp.o.d"
  "bench_fig10_toall"
  "bench_fig10_toall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_toall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

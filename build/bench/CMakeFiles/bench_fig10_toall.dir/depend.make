# Empty dependencies file for bench_fig10_toall.
# This may be replaced when dependencies are built.

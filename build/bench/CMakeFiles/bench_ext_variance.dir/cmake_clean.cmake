file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_variance.dir/bench_ext_variance.cpp.o"
  "CMakeFiles/bench_ext_variance.dir/bench_ext_variance.cpp.o.d"
  "bench_ext_variance"
  "bench_ext_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ext_variance.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_toone.dir/bench_fig11_toone.cpp.o"
  "CMakeFiles/bench_fig11_toone.dir/bench_fig11_toone.cpp.o.d"
  "bench_fig11_toone"
  "bench_fig11_toone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_toone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig11_toone.
# This may be replaced when dependencies are built.

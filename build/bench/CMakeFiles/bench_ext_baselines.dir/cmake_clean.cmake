file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_baselines.dir/bench_ext_baselines.cpp.o"
  "CMakeFiles/bench_ext_baselines.dir/bench_ext_baselines.cpp.o.d"
  "bench_ext_baselines"
  "bench_ext_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

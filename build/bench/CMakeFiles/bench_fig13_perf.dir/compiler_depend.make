# Empty compiler generated dependencies file for bench_fig13_perf.
# This may be replaced when dependencies are built.

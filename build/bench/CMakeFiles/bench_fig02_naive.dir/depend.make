# Empty dependencies file for bench_fig02_naive.
# This may be replaced when dependencies are built.

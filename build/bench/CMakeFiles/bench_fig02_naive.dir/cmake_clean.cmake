file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_naive.dir/bench_fig02_naive.cpp.o"
  "CMakeFiles/bench_fig02_naive.dir/bench_fig02_naive.cpp.o.d"
  "bench_fig02_naive"
  "bench_fig02_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

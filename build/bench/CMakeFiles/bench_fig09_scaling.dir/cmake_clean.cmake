file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_scaling.dir/bench_fig09_scaling.cpp.o"
  "CMakeFiles/bench_fig09_scaling.dir/bench_fig09_scaling.cpp.o.d"
  "bench_fig09_scaling"
  "bench_fig09_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig09_scaling.
# This may be replaced when dependencies are built.

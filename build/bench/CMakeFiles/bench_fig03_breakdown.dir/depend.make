# Empty dependencies file for bench_fig03_breakdown.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_tokens.dir/bench_abl_tokens.cpp.o"
  "CMakeFiles/bench_abl_tokens.dir/bench_abl_tokens.cpp.o.d"
  "bench_abl_tokens"
  "bench_abl_tokens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_tokens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_abl_tokens.
# This may be replaced when dependencies are built.

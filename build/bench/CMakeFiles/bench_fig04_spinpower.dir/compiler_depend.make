# Empty compiler generated dependencies file for bench_fig04_spinpower.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_spinpower.dir/bench_fig04_spinpower.cpp.o"
  "CMakeFiles/bench_fig04_spinpower.dir/bench_fig04_spinpower.cpp.o.d"
  "bench_fig04_spinpower"
  "bench_fig04_spinpower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_spinpower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

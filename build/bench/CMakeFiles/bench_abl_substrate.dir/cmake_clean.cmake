file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_substrate.dir/bench_abl_substrate.cpp.o"
  "CMakeFiles/bench_abl_substrate.dir/bench_abl_substrate.cpp.o.d"
  "bench_abl_substrate"
  "bench_abl_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_abl_substrate.
# This may be replaced when dependencies are built.

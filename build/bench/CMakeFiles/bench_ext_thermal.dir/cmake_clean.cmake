file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_thermal.dir/bench_ext_thermal.cpp.o"
  "CMakeFiles/bench_ext_thermal.dir/bench_ext_thermal.cpp.o.d"
  "bench_ext_thermal"
  "bench_ext_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

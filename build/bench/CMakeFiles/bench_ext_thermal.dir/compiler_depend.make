# Empty compiler generated dependencies file for bench_ext_thermal.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_dynamic.dir/bench_fig12_dynamic.cpp.o"
  "CMakeFiles/bench_fig12_dynamic.dir/bench_fig12_dynamic.cpp.o.d"
  "bench_fig12_dynamic"
  "bench_fig12_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ivd_tdp.dir/bench_ivd_tdp.cpp.o"
  "CMakeFiles/bench_ivd_tdp.dir/bench_ivd_tdp.cpp.o.d"
  "bench_ivd_tdp"
  "bench_ivd_tdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ivd_tdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ivd_tdp.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ivd_tdp.cpp" "bench/CMakeFiles/bench_ivd_tdp.dir/bench_ivd_tdp.cpp.o" "gcc" "bench/CMakeFiles/bench_ivd_tdp.dir/bench_ivd_tdp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ptb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_dvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ptb_mem.dir/mem/cache.cpp.o"
  "CMakeFiles/ptb_mem.dir/mem/cache.cpp.o.d"
  "CMakeFiles/ptb_mem.dir/mem/directory.cpp.o"
  "CMakeFiles/ptb_mem.dir/mem/directory.cpp.o.d"
  "CMakeFiles/ptb_mem.dir/mem/dram.cpp.o"
  "CMakeFiles/ptb_mem.dir/mem/dram.cpp.o.d"
  "CMakeFiles/ptb_mem.dir/mem/memory_system.cpp.o"
  "CMakeFiles/ptb_mem.dir/mem/memory_system.cpp.o.d"
  "libptb_mem.a"
  "libptb_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

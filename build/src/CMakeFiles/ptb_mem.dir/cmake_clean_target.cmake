file(REMOVE_RECURSE
  "libptb_mem.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache.cpp" "src/CMakeFiles/ptb_mem.dir/mem/cache.cpp.o" "gcc" "src/CMakeFiles/ptb_mem.dir/mem/cache.cpp.o.d"
  "/root/repo/src/mem/directory.cpp" "src/CMakeFiles/ptb_mem.dir/mem/directory.cpp.o" "gcc" "src/CMakeFiles/ptb_mem.dir/mem/directory.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/CMakeFiles/ptb_mem.dir/mem/dram.cpp.o" "gcc" "src/CMakeFiles/ptb_mem.dir/mem/dram.cpp.o.d"
  "/root/repo/src/mem/memory_system.cpp" "src/CMakeFiles/ptb_mem.dir/mem/memory_system.cpp.o" "gcc" "src/CMakeFiles/ptb_mem.dir/mem/memory_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ptb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for ptb_mem.
# This may be replaced when dependencies are built.

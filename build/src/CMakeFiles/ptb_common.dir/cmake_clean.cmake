file(REMOVE_RECURSE
  "CMakeFiles/ptb_common.dir/common/stats.cpp.o"
  "CMakeFiles/ptb_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/ptb_common.dir/common/table.cpp.o"
  "CMakeFiles/ptb_common.dir/common/table.cpp.o.d"
  "libptb_common.a"
  "libptb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libptb_common.a"
)

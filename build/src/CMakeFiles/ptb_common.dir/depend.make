# Empty dependencies file for ptb_common.
# This may be replaced when dependencies are built.

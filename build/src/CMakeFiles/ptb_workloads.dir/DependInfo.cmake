
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/program.cpp" "src/CMakeFiles/ptb_workloads.dir/workloads/program.cpp.o" "gcc" "src/CMakeFiles/ptb_workloads.dir/workloads/program.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "src/CMakeFiles/ptb_workloads.dir/workloads/suite.cpp.o" "gcc" "src/CMakeFiles/ptb_workloads.dir/workloads/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ptb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ptb_workloads.dir/workloads/program.cpp.o"
  "CMakeFiles/ptb_workloads.dir/workloads/program.cpp.o.d"
  "CMakeFiles/ptb_workloads.dir/workloads/suite.cpp.o"
  "CMakeFiles/ptb_workloads.dir/workloads/suite.cpp.o.d"
  "libptb_workloads.a"
  "libptb_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

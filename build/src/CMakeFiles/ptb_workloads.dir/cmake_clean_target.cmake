file(REMOVE_RECURSE
  "libptb_workloads.a"
)

# Empty compiler generated dependencies file for ptb_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ptb_noc.dir/noc/mesh.cpp.o"
  "CMakeFiles/ptb_noc.dir/noc/mesh.cpp.o.d"
  "libptb_noc.a"
  "libptb_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libptb_noc.a"
)

# Empty compiler generated dependencies file for ptb_noc.
# This may be replaced when dependencies are built.

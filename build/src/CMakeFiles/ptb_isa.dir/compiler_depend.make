# Empty compiler generated dependencies file for ptb_isa.
# This may be replaced when dependencies are built.

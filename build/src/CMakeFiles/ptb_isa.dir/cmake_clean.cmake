file(REMOVE_RECURSE
  "CMakeFiles/ptb_isa.dir/isa/microop.cpp.o"
  "CMakeFiles/ptb_isa.dir/isa/microop.cpp.o.d"
  "libptb_isa.a"
  "libptb_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

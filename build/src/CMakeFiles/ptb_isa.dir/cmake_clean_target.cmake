file(REMOVE_RECURSE
  "libptb_isa.a"
)

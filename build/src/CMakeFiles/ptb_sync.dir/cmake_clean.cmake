file(REMOVE_RECURSE
  "CMakeFiles/ptb_sync.dir/sync/bct_detector.cpp.o"
  "CMakeFiles/ptb_sync.dir/sync/bct_detector.cpp.o.d"
  "CMakeFiles/ptb_sync.dir/sync/spin_tracker.cpp.o"
  "CMakeFiles/ptb_sync.dir/sync/spin_tracker.cpp.o.d"
  "CMakeFiles/ptb_sync.dir/sync/sync_state.cpp.o"
  "CMakeFiles/ptb_sync.dir/sync/sync_state.cpp.o.d"
  "libptb_sync.a"
  "libptb_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

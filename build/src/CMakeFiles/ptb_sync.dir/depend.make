# Empty dependencies file for ptb_sync.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/bct_detector.cpp" "src/CMakeFiles/ptb_sync.dir/sync/bct_detector.cpp.o" "gcc" "src/CMakeFiles/ptb_sync.dir/sync/bct_detector.cpp.o.d"
  "/root/repo/src/sync/spin_tracker.cpp" "src/CMakeFiles/ptb_sync.dir/sync/spin_tracker.cpp.o" "gcc" "src/CMakeFiles/ptb_sync.dir/sync/spin_tracker.cpp.o.d"
  "/root/repo/src/sync/sync_state.cpp" "src/CMakeFiles/ptb_sync.dir/sync/sync_state.cpp.o" "gcc" "src/CMakeFiles/ptb_sync.dir/sync/sync_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ptb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libptb_sync.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ptb_core.dir/core/balancer.cpp.o"
  "CMakeFiles/ptb_core.dir/core/balancer.cpp.o.d"
  "CMakeFiles/ptb_core.dir/core/baselines.cpp.o"
  "CMakeFiles/ptb_core.dir/core/baselines.cpp.o.d"
  "CMakeFiles/ptb_core.dir/core/budget.cpp.o"
  "CMakeFiles/ptb_core.dir/core/budget.cpp.o.d"
  "CMakeFiles/ptb_core.dir/core/clustered.cpp.o"
  "CMakeFiles/ptb_core.dir/core/clustered.cpp.o.d"
  "CMakeFiles/ptb_core.dir/core/enforcer.cpp.o"
  "CMakeFiles/ptb_core.dir/core/enforcer.cpp.o.d"
  "CMakeFiles/ptb_core.dir/core/policy.cpp.o"
  "CMakeFiles/ptb_core.dir/core/policy.cpp.o.d"
  "CMakeFiles/ptb_core.dir/core/spin_power_detector.cpp.o"
  "CMakeFiles/ptb_core.dir/core/spin_power_detector.cpp.o.d"
  "CMakeFiles/ptb_core.dir/core/two_level.cpp.o"
  "CMakeFiles/ptb_core.dir/core/two_level.cpp.o.d"
  "libptb_core.a"
  "libptb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

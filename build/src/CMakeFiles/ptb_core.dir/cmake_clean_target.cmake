file(REMOVE_RECURSE
  "libptb_core.a"
)

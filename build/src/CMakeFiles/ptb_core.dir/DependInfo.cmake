
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/balancer.cpp" "src/CMakeFiles/ptb_core.dir/core/balancer.cpp.o" "gcc" "src/CMakeFiles/ptb_core.dir/core/balancer.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/CMakeFiles/ptb_core.dir/core/baselines.cpp.o" "gcc" "src/CMakeFiles/ptb_core.dir/core/baselines.cpp.o.d"
  "/root/repo/src/core/budget.cpp" "src/CMakeFiles/ptb_core.dir/core/budget.cpp.o" "gcc" "src/CMakeFiles/ptb_core.dir/core/budget.cpp.o.d"
  "/root/repo/src/core/clustered.cpp" "src/CMakeFiles/ptb_core.dir/core/clustered.cpp.o" "gcc" "src/CMakeFiles/ptb_core.dir/core/clustered.cpp.o.d"
  "/root/repo/src/core/enforcer.cpp" "src/CMakeFiles/ptb_core.dir/core/enforcer.cpp.o" "gcc" "src/CMakeFiles/ptb_core.dir/core/enforcer.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/CMakeFiles/ptb_core.dir/core/policy.cpp.o" "gcc" "src/CMakeFiles/ptb_core.dir/core/policy.cpp.o.d"
  "/root/repo/src/core/spin_power_detector.cpp" "src/CMakeFiles/ptb_core.dir/core/spin_power_detector.cpp.o" "gcc" "src/CMakeFiles/ptb_core.dir/core/spin_power_detector.cpp.o.d"
  "/root/repo/src/core/two_level.cpp" "src/CMakeFiles/ptb_core.dir/core/two_level.cpp.o" "gcc" "src/CMakeFiles/ptb_core.dir/core/two_level.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ptb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_dvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

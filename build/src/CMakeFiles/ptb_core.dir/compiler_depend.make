# Empty compiler generated dependencies file for ptb_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ptb_cpu.dir/cpu/branch_predictor.cpp.o"
  "CMakeFiles/ptb_cpu.dir/cpu/branch_predictor.cpp.o.d"
  "CMakeFiles/ptb_cpu.dir/cpu/core.cpp.o"
  "CMakeFiles/ptb_cpu.dir/cpu/core.cpp.o.d"
  "CMakeFiles/ptb_cpu.dir/cpu/functional_units.cpp.o"
  "CMakeFiles/ptb_cpu.dir/cpu/functional_units.cpp.o.d"
  "libptb_cpu.a"
  "libptb_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

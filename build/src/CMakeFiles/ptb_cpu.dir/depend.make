# Empty dependencies file for ptb_cpu.
# This may be replaced when dependencies are built.

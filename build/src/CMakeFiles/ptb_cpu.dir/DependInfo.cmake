
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/branch_predictor.cpp" "src/CMakeFiles/ptb_cpu.dir/cpu/branch_predictor.cpp.o" "gcc" "src/CMakeFiles/ptb_cpu.dir/cpu/branch_predictor.cpp.o.d"
  "/root/repo/src/cpu/core.cpp" "src/CMakeFiles/ptb_cpu.dir/cpu/core.cpp.o" "gcc" "src/CMakeFiles/ptb_cpu.dir/cpu/core.cpp.o.d"
  "/root/repo/src/cpu/functional_units.cpp" "src/CMakeFiles/ptb_cpu.dir/cpu/functional_units.cpp.o" "gcc" "src/CMakeFiles/ptb_cpu.dir/cpu/functional_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ptb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libptb_cpu.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dvfs/dvfs.cpp" "src/CMakeFiles/ptb_dvfs.dir/dvfs/dvfs.cpp.o" "gcc" "src/CMakeFiles/ptb_dvfs.dir/dvfs/dvfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ptb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libptb_dvfs.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ptb_dvfs.dir/dvfs/dvfs.cpp.o"
  "CMakeFiles/ptb_dvfs.dir/dvfs/dvfs.cpp.o.d"
  "libptb_dvfs.a"
  "libptb_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ptb_dvfs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libptb_power.a"
)

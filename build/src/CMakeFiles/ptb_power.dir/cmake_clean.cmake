file(REMOVE_RECURSE
  "CMakeFiles/ptb_power.dir/power/energy_stats.cpp.o"
  "CMakeFiles/ptb_power.dir/power/energy_stats.cpp.o.d"
  "CMakeFiles/ptb_power.dir/power/kmeans.cpp.o"
  "CMakeFiles/ptb_power.dir/power/kmeans.cpp.o.d"
  "CMakeFiles/ptb_power.dir/power/power_model.cpp.o"
  "CMakeFiles/ptb_power.dir/power/power_model.cpp.o.d"
  "CMakeFiles/ptb_power.dir/power/ptht.cpp.o"
  "CMakeFiles/ptb_power.dir/power/ptht.cpp.o.d"
  "CMakeFiles/ptb_power.dir/power/thermal.cpp.o"
  "CMakeFiles/ptb_power.dir/power/thermal.cpp.o.d"
  "libptb_power.a"
  "libptb_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/energy_stats.cpp" "src/CMakeFiles/ptb_power.dir/power/energy_stats.cpp.o" "gcc" "src/CMakeFiles/ptb_power.dir/power/energy_stats.cpp.o.d"
  "/root/repo/src/power/kmeans.cpp" "src/CMakeFiles/ptb_power.dir/power/kmeans.cpp.o" "gcc" "src/CMakeFiles/ptb_power.dir/power/kmeans.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/CMakeFiles/ptb_power.dir/power/power_model.cpp.o" "gcc" "src/CMakeFiles/ptb_power.dir/power/power_model.cpp.o.d"
  "/root/repo/src/power/ptht.cpp" "src/CMakeFiles/ptb_power.dir/power/ptht.cpp.o" "gcc" "src/CMakeFiles/ptb_power.dir/power/ptht.cpp.o.d"
  "/root/repo/src/power/thermal.cpp" "src/CMakeFiles/ptb_power.dir/power/thermal.cpp.o" "gcc" "src/CMakeFiles/ptb_power.dir/power/thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ptb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for ptb_power.
# This may be replaced when dependencies are built.

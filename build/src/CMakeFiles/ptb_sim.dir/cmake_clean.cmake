file(REMOVE_RECURSE
  "CMakeFiles/ptb_sim.dir/sim/cmp.cpp.o"
  "CMakeFiles/ptb_sim.dir/sim/cmp.cpp.o.d"
  "CMakeFiles/ptb_sim.dir/sim/experiment.cpp.o"
  "CMakeFiles/ptb_sim.dir/sim/experiment.cpp.o.d"
  "CMakeFiles/ptb_sim.dir/sim/reporting.cpp.o"
  "CMakeFiles/ptb_sim.dir/sim/reporting.cpp.o.d"
  "CMakeFiles/ptb_sim.dir/sim/trace_export.cpp.o"
  "CMakeFiles/ptb_sim.dir/sim/trace_export.cpp.o.d"
  "libptb_sim.a"
  "libptb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libptb_sim.a"
)

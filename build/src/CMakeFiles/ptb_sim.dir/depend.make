# Empty dependencies file for ptb_sim.
# This may be replaced when dependencies are built.

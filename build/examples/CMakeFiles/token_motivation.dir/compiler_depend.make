# Empty compiler generated dependencies file for token_motivation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/token_motivation.dir/token_motivation.cpp.o"
  "CMakeFiles/token_motivation.dir/token_motivation.cpp.o.d"
  "token_motivation"
  "token_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for budget_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/budget_sweep.dir/budget_sweep.cpp.o"
  "CMakeFiles/budget_sweep.dir/budget_sweep.cpp.o.d"
  "budget_sweep"
  "budget_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/budget_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

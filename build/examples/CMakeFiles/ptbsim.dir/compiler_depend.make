# Empty compiler generated dependencies file for ptbsim.
# This may be replaced when dependencies are built.

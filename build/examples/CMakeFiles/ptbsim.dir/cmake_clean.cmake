file(REMOVE_RECURSE
  "CMakeFiles/ptbsim.dir/ptbsim.cpp.o"
  "CMakeFiles/ptbsim.dir/ptbsim.cpp.o.d"
  "ptbsim"
  "ptbsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptbsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for barrier_balance.
# This may be replaced when dependencies are built.

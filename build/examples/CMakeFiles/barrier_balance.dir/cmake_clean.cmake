file(REMOVE_RECURSE
  "CMakeFiles/barrier_balance.dir/barrier_balance.cpp.o"
  "CMakeFiles/barrier_balance.dir/barrier_balance.cpp.o.d"
  "barrier_balance"
  "barrier_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrier_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for spin_detect.
# This may be replaced when dependencies are built.

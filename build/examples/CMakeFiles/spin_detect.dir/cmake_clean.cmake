file(REMOVE_RECURSE
  "CMakeFiles/spin_detect.dir/spin_detect.cpp.o"
  "CMakeFiles/spin_detect.dir/spin_detect.cpp.o.d"
  "spin_detect"
  "spin_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spin_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ptb_isa_test.dir/isa/microop_test.cpp.o"
  "CMakeFiles/ptb_isa_test.dir/isa/microop_test.cpp.o.d"
  "ptb_isa_test"
  "ptb_isa_test.pdb"
  "ptb_isa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_isa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

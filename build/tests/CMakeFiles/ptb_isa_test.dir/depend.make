# Empty dependencies file for ptb_isa_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ptb_sync_test.
# This may be replaced when dependencies are built.

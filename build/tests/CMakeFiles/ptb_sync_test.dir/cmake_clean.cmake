file(REMOVE_RECURSE
  "CMakeFiles/ptb_sync_test.dir/sync/bct_detector_test.cpp.o"
  "CMakeFiles/ptb_sync_test.dir/sync/bct_detector_test.cpp.o.d"
  "CMakeFiles/ptb_sync_test.dir/sync/spin_tracker_test.cpp.o"
  "CMakeFiles/ptb_sync_test.dir/sync/spin_tracker_test.cpp.o.d"
  "CMakeFiles/ptb_sync_test.dir/sync/sync_state_test.cpp.o"
  "CMakeFiles/ptb_sync_test.dir/sync/sync_state_test.cpp.o.d"
  "ptb_sync_test"
  "ptb_sync_test.pdb"
  "ptb_sync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ptb_dvfs_test.dir/dvfs/dvfs_test.cpp.o"
  "CMakeFiles/ptb_dvfs_test.dir/dvfs/dvfs_test.cpp.o.d"
  "ptb_dvfs_test"
  "ptb_dvfs_test.pdb"
  "ptb_dvfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_dvfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

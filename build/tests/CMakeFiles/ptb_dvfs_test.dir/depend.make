# Empty dependencies file for ptb_dvfs_test.
# This may be replaced when dependencies are built.

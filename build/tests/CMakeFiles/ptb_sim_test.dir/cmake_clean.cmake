file(REMOVE_RECURSE
  "CMakeFiles/ptb_sim_test.dir/sim/cmp_test.cpp.o"
  "CMakeFiles/ptb_sim_test.dir/sim/cmp_test.cpp.o.d"
  "CMakeFiles/ptb_sim_test.dir/sim/experiment_test.cpp.o"
  "CMakeFiles/ptb_sim_test.dir/sim/experiment_test.cpp.o.d"
  "CMakeFiles/ptb_sim_test.dir/sim/reporting_test.cpp.o"
  "CMakeFiles/ptb_sim_test.dir/sim/reporting_test.cpp.o.d"
  "CMakeFiles/ptb_sim_test.dir/sim/trace_export_test.cpp.o"
  "CMakeFiles/ptb_sim_test.dir/sim/trace_export_test.cpp.o.d"
  "ptb_sim_test"
  "ptb_sim_test.pdb"
  "ptb_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

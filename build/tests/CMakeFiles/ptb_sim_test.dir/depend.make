# Empty dependencies file for ptb_sim_test.
# This may be replaced when dependencies are built.

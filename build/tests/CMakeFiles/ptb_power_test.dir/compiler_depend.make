# Empty compiler generated dependencies file for ptb_power_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ptb_power_test.dir/power/energy_stats_test.cpp.o"
  "CMakeFiles/ptb_power_test.dir/power/energy_stats_test.cpp.o.d"
  "CMakeFiles/ptb_power_test.dir/power/kmeans_test.cpp.o"
  "CMakeFiles/ptb_power_test.dir/power/kmeans_test.cpp.o.d"
  "CMakeFiles/ptb_power_test.dir/power/power_model_test.cpp.o"
  "CMakeFiles/ptb_power_test.dir/power/power_model_test.cpp.o.d"
  "CMakeFiles/ptb_power_test.dir/power/ptht_test.cpp.o"
  "CMakeFiles/ptb_power_test.dir/power/ptht_test.cpp.o.d"
  "CMakeFiles/ptb_power_test.dir/power/thermal_test.cpp.o"
  "CMakeFiles/ptb_power_test.dir/power/thermal_test.cpp.o.d"
  "ptb_power_test"
  "ptb_power_test.pdb"
  "ptb_power_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ptb_noc_test.dir/noc/mesh_test.cpp.o"
  "CMakeFiles/ptb_noc_test.dir/noc/mesh_test.cpp.o.d"
  "ptb_noc_test"
  "ptb_noc_test.pdb"
  "ptb_noc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_noc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

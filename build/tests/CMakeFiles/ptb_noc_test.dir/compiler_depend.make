# Empty compiler generated dependencies file for ptb_noc_test.
# This may be replaced when dependencies are built.

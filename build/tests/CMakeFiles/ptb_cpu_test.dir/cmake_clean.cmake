file(REMOVE_RECURSE
  "CMakeFiles/ptb_cpu_test.dir/cpu/branch_predictor_test.cpp.o"
  "CMakeFiles/ptb_cpu_test.dir/cpu/branch_predictor_test.cpp.o.d"
  "CMakeFiles/ptb_cpu_test.dir/cpu/core_test.cpp.o"
  "CMakeFiles/ptb_cpu_test.dir/cpu/core_test.cpp.o.d"
  "CMakeFiles/ptb_cpu_test.dir/cpu/functional_units_test.cpp.o"
  "CMakeFiles/ptb_cpu_test.dir/cpu/functional_units_test.cpp.o.d"
  "ptb_cpu_test"
  "ptb_cpu_test.pdb"
  "ptb_cpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_cpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

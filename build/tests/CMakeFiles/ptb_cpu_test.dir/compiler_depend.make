# Empty compiler generated dependencies file for ptb_cpu_test.
# This may be replaced when dependencies are built.

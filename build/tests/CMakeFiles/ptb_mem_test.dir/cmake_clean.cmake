file(REMOVE_RECURSE
  "CMakeFiles/ptb_mem_test.dir/mem/cache_test.cpp.o"
  "CMakeFiles/ptb_mem_test.dir/mem/cache_test.cpp.o.d"
  "CMakeFiles/ptb_mem_test.dir/mem/coherence_test.cpp.o"
  "CMakeFiles/ptb_mem_test.dir/mem/coherence_test.cpp.o.d"
  "CMakeFiles/ptb_mem_test.dir/mem/dram_test.cpp.o"
  "CMakeFiles/ptb_mem_test.dir/mem/dram_test.cpp.o.d"
  "CMakeFiles/ptb_mem_test.dir/mem/memory_system_test.cpp.o"
  "CMakeFiles/ptb_mem_test.dir/mem/memory_system_test.cpp.o.d"
  "ptb_mem_test"
  "ptb_mem_test.pdb"
  "ptb_mem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

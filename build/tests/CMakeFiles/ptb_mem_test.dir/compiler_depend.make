# Empty compiler generated dependencies file for ptb_mem_test.
# This may be replaced when dependencies are built.

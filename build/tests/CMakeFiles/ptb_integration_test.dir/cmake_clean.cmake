file(REMOVE_RECURSE
  "CMakeFiles/ptb_integration_test.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/ptb_integration_test.dir/integration/end_to_end_test.cpp.o.d"
  "CMakeFiles/ptb_integration_test.dir/integration/figure_shapes_test.cpp.o"
  "CMakeFiles/ptb_integration_test.dir/integration/figure_shapes_test.cpp.o.d"
  "CMakeFiles/ptb_integration_test.dir/integration/properties_test.cpp.o"
  "CMakeFiles/ptb_integration_test.dir/integration/properties_test.cpp.o.d"
  "ptb_integration_test"
  "ptb_integration_test.pdb"
  "ptb_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

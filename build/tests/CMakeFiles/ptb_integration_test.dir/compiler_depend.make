# Empty compiler generated dependencies file for ptb_integration_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for ptb_common_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ptb_common_test.dir/common/config_test.cpp.o"
  "CMakeFiles/ptb_common_test.dir/common/config_test.cpp.o.d"
  "CMakeFiles/ptb_common_test.dir/common/rng_test.cpp.o"
  "CMakeFiles/ptb_common_test.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/ptb_common_test.dir/common/stats_test.cpp.o"
  "CMakeFiles/ptb_common_test.dir/common/stats_test.cpp.o.d"
  "CMakeFiles/ptb_common_test.dir/common/table_test.cpp.o"
  "CMakeFiles/ptb_common_test.dir/common/table_test.cpp.o.d"
  "ptb_common_test"
  "ptb_common_test.pdb"
  "ptb_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ptb_workloads_test.
# This may be replaced when dependencies are built.

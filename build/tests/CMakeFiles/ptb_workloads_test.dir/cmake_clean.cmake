file(REMOVE_RECURSE
  "CMakeFiles/ptb_workloads_test.dir/workloads/address_stream_test.cpp.o"
  "CMakeFiles/ptb_workloads_test.dir/workloads/address_stream_test.cpp.o.d"
  "CMakeFiles/ptb_workloads_test.dir/workloads/program_test.cpp.o"
  "CMakeFiles/ptb_workloads_test.dir/workloads/program_test.cpp.o.d"
  "CMakeFiles/ptb_workloads_test.dir/workloads/suite_test.cpp.o"
  "CMakeFiles/ptb_workloads_test.dir/workloads/suite_test.cpp.o.d"
  "ptb_workloads_test"
  "ptb_workloads_test.pdb"
  "ptb_workloads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_workloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ptb_core_test.
# This may be replaced when dependencies are built.

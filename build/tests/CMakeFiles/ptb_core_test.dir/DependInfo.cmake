
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/balancer_test.cpp" "tests/CMakeFiles/ptb_core_test.dir/core/balancer_test.cpp.o" "gcc" "tests/CMakeFiles/ptb_core_test.dir/core/balancer_test.cpp.o.d"
  "/root/repo/tests/core/baselines_test.cpp" "tests/CMakeFiles/ptb_core_test.dir/core/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/ptb_core_test.dir/core/baselines_test.cpp.o.d"
  "/root/repo/tests/core/budget_test.cpp" "tests/CMakeFiles/ptb_core_test.dir/core/budget_test.cpp.o" "gcc" "tests/CMakeFiles/ptb_core_test.dir/core/budget_test.cpp.o.d"
  "/root/repo/tests/core/clustered_test.cpp" "tests/CMakeFiles/ptb_core_test.dir/core/clustered_test.cpp.o" "gcc" "tests/CMakeFiles/ptb_core_test.dir/core/clustered_test.cpp.o.d"
  "/root/repo/tests/core/policy_test.cpp" "tests/CMakeFiles/ptb_core_test.dir/core/policy_test.cpp.o" "gcc" "tests/CMakeFiles/ptb_core_test.dir/core/policy_test.cpp.o.d"
  "/root/repo/tests/core/spin_power_detector_test.cpp" "tests/CMakeFiles/ptb_core_test.dir/core/spin_power_detector_test.cpp.o" "gcc" "tests/CMakeFiles/ptb_core_test.dir/core/spin_power_detector_test.cpp.o.d"
  "/root/repo/tests/core/two_level_test.cpp" "tests/CMakeFiles/ptb_core_test.dir/core/two_level_test.cpp.o" "gcc" "tests/CMakeFiles/ptb_core_test.dir/core/two_level_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ptb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_dvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ptb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ptb_core_test.dir/core/balancer_test.cpp.o"
  "CMakeFiles/ptb_core_test.dir/core/balancer_test.cpp.o.d"
  "CMakeFiles/ptb_core_test.dir/core/baselines_test.cpp.o"
  "CMakeFiles/ptb_core_test.dir/core/baselines_test.cpp.o.d"
  "CMakeFiles/ptb_core_test.dir/core/budget_test.cpp.o"
  "CMakeFiles/ptb_core_test.dir/core/budget_test.cpp.o.d"
  "CMakeFiles/ptb_core_test.dir/core/clustered_test.cpp.o"
  "CMakeFiles/ptb_core_test.dir/core/clustered_test.cpp.o.d"
  "CMakeFiles/ptb_core_test.dir/core/policy_test.cpp.o"
  "CMakeFiles/ptb_core_test.dir/core/policy_test.cpp.o.d"
  "CMakeFiles/ptb_core_test.dir/core/spin_power_detector_test.cpp.o"
  "CMakeFiles/ptb_core_test.dir/core/spin_power_detector_test.cpp.o.d"
  "CMakeFiles/ptb_core_test.dir/core/two_level_test.cpp.o"
  "CMakeFiles/ptb_core_test.dir/core/two_level_test.cpp.o.d"
  "ptb_core_test"
  "ptb_core_test.pdb"
  "ptb_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptb_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ptb_common_test[1]_include.cmake")
include("/root/repo/build/tests/ptb_isa_test[1]_include.cmake")
include("/root/repo/build/tests/ptb_noc_test[1]_include.cmake")
include("/root/repo/build/tests/ptb_mem_test[1]_include.cmake")
include("/root/repo/build/tests/ptb_cpu_test[1]_include.cmake")
include("/root/repo/build/tests/ptb_power_test[1]_include.cmake")
include("/root/repo/build/tests/ptb_dvfs_test[1]_include.cmake")
include("/root/repo/build/tests/ptb_sync_test[1]_include.cmake")
include("/root/repo/build/tests/ptb_workloads_test[1]_include.cmake")
include("/root/repo/build/tests/ptb_core_test[1]_include.cmake")
include("/root/repo/build/tests/ptb_sim_test[1]_include.cmake")
include("/root/repo/build/tests/ptb_integration_test[1]_include.cmake")
